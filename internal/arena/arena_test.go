package arena

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func TestAllocInitialState(t *testing.T) {
	a := New()
	r := a.Alloc(42, 7)
	if r == Nil {
		t.Fatal("Alloc returned Nil")
	}
	n := a.Get(r)
	if n.Key.Plain() != 42 || n.Val.Plain() != 7 {
		t.Fatalf("key/val = %d/%d, want 42/7", n.Key.Plain(), n.Val.Plain())
	}
	if n.L.Plain() != Nil || n.R.Plain() != Nil || n.P.Plain() != Nil {
		t.Fatal("children/parent not Nil")
	}
	if n.Del.Plain() != 0 || n.Rem.Plain() != RemFalse {
		t.Fatal("flags not clear")
	}
	if n.LeftH.Load() != 0 || n.RightH.Load() != 0 || n.LocalH.Load() != 1 {
		t.Fatal("paper initial heights violated (left-h=right-h=0, local-h=1)")
	}
}

func TestRefZeroIsNil(t *testing.T) {
	a := New()
	r := a.Alloc(1, 1)
	if r == 0 {
		t.Fatal("first allocation must not be ref 0 (reserved for ⊥)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get(Nil) must panic")
		}
	}()
	a.Get(Nil)
}

func TestFreeNilPanics(t *testing.T) {
	a := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Free(Nil) must panic")
		}
	}()
	a.Free(Nil)
}

func TestGetOutOfRangePanics(t *testing.T) {
	a := New()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Get must panic")
		}
	}()
	a.Get(1 << 40)
}

func TestFreeReuse(t *testing.T) {
	a := New()
	r1 := a.Alloc(1, 1)
	a.Free(r1)
	r2 := a.Alloc(2, 2)
	if r2 != r1 {
		t.Fatalf("expected LIFO reuse of freed slot: got %d, want %d", r2, r1)
	}
	n := a.Get(r2)
	if n.Key.Plain() != 2 || n.Val.Plain() != 2 || n.Del.Plain() != 0 {
		t.Fatal("recycled node not reinitialized")
	}
	if a.Reuses() != 1 {
		t.Fatalf("Reuses=%d, want 1", a.Reuses())
	}
}

func TestGrowthAcrossChunks(t *testing.T) {
	a := New()
	const n = chunkSize*2 + 10
	refs := make([]Ref, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, a.Alloc(uint64(i), uint64(i)))
	}
	seen := make(map[Ref]bool, n)
	for i, r := range refs {
		if seen[r] {
			t.Fatalf("duplicate ref %d", r)
		}
		seen[r] = true
		if got := a.Get(r).Key.Plain(); got != uint64(i) {
			t.Fatalf("node %d key=%d after growth", i, got)
		}
	}
	if a.Live() != n {
		t.Fatalf("Live=%d, want %d", a.Live(), n)
	}
	if a.Cap() < n {
		t.Fatalf("Cap=%d < %d", a.Cap(), n)
	}
}

func TestStableAddressesAcrossGrowth(t *testing.T) {
	a := New()
	r := a.Alloc(9, 9)
	p := a.Get(r)
	for i := 0; i < chunkSize+5; i++ {
		a.Alloc(uint64(i), 0)
	}
	if a.Get(r) != p {
		t.Fatal("node address changed after arena growth")
	}
}

func TestConcurrentAllocDistinct(t *testing.T) {
	a := New()
	const g, per = 8, 2000
	var wg sync.WaitGroup
	out := make([][]Ref, g)
	for i := 0; i < g; i++ {
		out[i] = make([]Ref, 0, per)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				out[i] = append(out[i], a.Alloc(uint64(i), uint64(j)))
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[Ref]bool, g*per)
	for _, refs := range out {
		for _, r := range refs {
			if seen[r] {
				t.Fatalf("ref %d handed to two goroutines", r)
			}
			seen[r] = true
		}
	}
}

func TestAllocFreeChurnProperty(t *testing.T) {
	// Property: after any interleaved sequence of allocs and frees, Live()
	// equals allocs-frees and all live nodes keep their payloads.
	f := func(ops []bool) bool {
		a := New()
		live := map[Ref]uint64{}
		var order []Ref
		k := uint64(0)
		for _, alloc := range ops {
			if alloc || len(order) == 0 {
				k++
				r := a.Alloc(k, k*3)
				live[r] = k
				order = append(order, r)
			} else {
				r := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, r)
				a.Free(r)
			}
		}
		if a.Live() != uint64(len(live)) {
			return false
		}
		for r, key := range live {
			n := a.Get(r)
			if n.Key.Plain() != key || n.Val.Plain() != key*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRemovedHelper(t *testing.T) {
	if Removed(RemFalse) {
		t.Fatal("RemFalse must not count as removed")
	}
	if !Removed(RemTrue) || !Removed(RemTrueByLeftRot) {
		t.Fatal("RemTrue / RemTrueByLeftRot must count as removed")
	}
}

func TestCollectorEpochProtocol(t *testing.T) {
	a := New()
	s := stm.New()
	th := s.NewThread()
	c := NewCollector(a)

	r1 := a.Alloc(1, 1)
	r2 := a.Alloc(2, 2)
	c.Defer(r1)
	c.Defer(r2)
	if c.PendingCount() != 2 {
		t.Fatalf("PendingCount=%d, want 2", c.PendingCount())
	}

	// Epoch with the thread idle: free immediately.
	c.BeginEpoch(s.Threads())
	if n := c.TryFree(); n != 2 {
		t.Fatalf("idle thread: freed %d, want 2", n)
	}
	if a.Frees() != 2 {
		t.Fatalf("arena Frees=%d, want 2", a.Frees())
	}

	// Epoch with a thread stuck in an operation: must not free.
	r3 := a.Alloc(3, 3)
	c.Defer(r3)
	blocked := make(chan struct{})
	release := make(chan struct{})
	go func() {
		th.Atomic(func(tx *stm.Tx) {
			close(blocked)
			<-release
		})
	}()
	<-blocked
	c.BeginEpoch(s.Threads())
	if n := c.TryFree(); n != 0 {
		t.Fatalf("pending thread: freed %d, want 0", n)
	}
	close(release)
	// Wait for the operation to complete (OpCount advances).
	for th.OpCount() == 0 {
	}
	if n := c.TryFree(); n != 1 {
		t.Fatalf("after op completion: freed %d, want 1", n)
	}
}

func TestCollectorOnlyFreesUpToMark(t *testing.T) {
	a := New()
	s := stm.New()
	c := NewCollector(a)
	r1 := a.Alloc(1, 1)
	c.Defer(r1)
	c.BeginEpoch(s.Threads())
	// Deferred after the epoch began: must survive this TryFree.
	r2 := a.Alloc(2, 2)
	c.Defer(r2)
	if n := c.TryFree(); n != 1 {
		t.Fatalf("freed %d, want 1 (only pre-mark garbage)", n)
	}
	if c.PendingCount() != 1 {
		t.Fatalf("PendingCount=%d, want 1", c.PendingCount())
	}
}

func TestCollectorEmptyEpoch(t *testing.T) {
	a := New()
	s := stm.New()
	c := NewCollector(a)
	c.BeginEpoch(s.Threads())
	if n := c.TryFree(); n != 0 {
		t.Fatalf("freed %d from empty list", n)
	}
}

func TestScratchLifecycle(t *testing.T) {
	a := New()
	var sc Scratch
	if sc.Node() != Nil {
		t.Fatal("fresh scratch has a node")
	}
	// Attempt 1: take and link.
	sc.ResetAttempt()
	r1 := sc.Take(a, 5, 50)
	if r1 == Nil || a.Get(r1).Key.Plain() != 5 {
		t.Fatal("Take did not initialize")
	}
	sc.MarkLinked()
	// Retry (attempt 2): reuse the same slot with new payload, no link.
	sc.ResetAttempt()
	r2 := sc.Take(a, 6, 60)
	if r2 != r1 {
		t.Fatalf("retry allocated a second slot: %d vs %d", r2, r1)
	}
	if a.Get(r2).Key.Plain() != 6 {
		t.Fatal("Take on retry did not reinitialize")
	}
	// Final attempt did not link: Release must free.
	frees := a.Frees()
	sc.Release(a)
	if a.Frees() != frees+1 {
		t.Fatal("Release did not free an unlinked scratch")
	}
	if sc.Node() != Nil {
		t.Fatal("Release did not reset the scratch")
	}
}

func TestScratchLinkedNotFreed(t *testing.T) {
	a := New()
	var sc Scratch
	sc.ResetAttempt()
	sc.Take(a, 1, 1)
	sc.MarkLinked()
	frees := a.Frees()
	sc.Release(a)
	if a.Frees() != frees {
		t.Fatal("Release freed a linked node")
	}
	// Releasing an empty scratch is a no-op.
	sc.Release(a)
	if a.Frees() != frees {
		t.Fatal("double Release freed something")
	}
}

func TestReinitResetsEverything(t *testing.T) {
	a := New()
	r := a.Alloc(1, 1)
	n := a.Get(r)
	n.L.SetPlain(7)
	n.R.SetPlain(8)
	n.P.SetPlain(9)
	n.Del.SetPlain(1)
	n.Rem.SetPlain(RemTrue)
	n.Aux.SetPlain(3)
	n.LeftH.Store(4)
	a.Reinit(r, 2, 20)
	if n.Key.Plain() != 2 || n.Val.Plain() != 20 {
		t.Fatal("payload not reset")
	}
	if n.L.Plain() != Nil || n.R.Plain() != Nil || n.P.Plain() != Nil {
		t.Fatal("links not reset")
	}
	if n.Del.Plain() != 0 || n.Rem.Plain() != RemFalse || n.Aux.Plain() != 0 {
		t.Fatal("flags not reset")
	}
	if n.LeftH.Load() != 0 || n.LocalH.Load() != 1 {
		t.Fatal("heights not reset")
	}
}

func TestCountersExposed(t *testing.T) {
	a := New()
	r := a.Alloc(1, 1)
	if a.Allocs() != 1 || a.Live() != 1 {
		t.Fatalf("allocs=%d live=%d", a.Allocs(), a.Live())
	}
	a.Free(r)
	if a.Frees() != 1 || a.Live() != 0 {
		t.Fatalf("frees=%d live=%d", a.Frees(), a.Live())
	}
}
