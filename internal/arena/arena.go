// Package arena provides the node storage substrate shared by every
// transactional tree in this repository: a chunked, index-addressed arena of
// tree nodes with a free list, plus the epoch-based garbage collector of
// paper §3.4 that lets the maintenance thread recycle physically removed
// nodes only once no application thread can still hold a reference.
//
// Nodes are addressed by Ref (a dense uint64 index; 0 is the nil sentinel ⊥)
// rather than by Go pointers so that child links fit in a single stm.Word
// and traversals never keep arbitrary heap objects alive. Chunks are never
// moved or shrunk, so a Ref resolves to a stable *Node for the lifetime of
// the arena.
package arena

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/stm"
)

// Ref identifies a node in an Arena. The zero Ref is ⊥ (nil).
type Ref = uint64

// Nil is the null node reference (the paper's ⊥).
const Nil Ref = 0

const (
	chunkBits = 13 // 8192 nodes per chunk
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1

	// maxChunks bounds the chunk directory (see Arena.chunkPtr): 8192
	// chunks × 8192 nodes ≈ 67M nodes ≈ 12 GiB of 192-byte nodes, far
	// beyond any workload in this repository. The fixed directory is what
	// lets Get resolve a Ref with a single dependent load.
	maxChunks = 8192
)

// Node is the universal tree node. The speculation-friendly tree, the
// no-restructuring tree, the red-black tree and the AVL tree all use a
// subset of its fields; sharing one layout keeps the arena monomorphic.
//
// Transactional fields (accessed through stm.Tx):
//
//	Key  — node key; immutable in the SF/NR trees (read with Plain/URead),
//	       mutable in the RB/AVL trees (successor replacement writes it)
//	Val  — associated value
//	L, R — left/right child Refs
//	P    — parent Ref (used by the red-black tree only)
//	Del  — logical deletion flag (paper §3.2): 1 when the key is absent
//	       from the abstraction even though the node is linked
//	Rem  — physical removal flag (paper §3.3): RemFalse, RemTrue or
//	       RemTrueByLeftRot
//	Aux  — per-tree extra word: red-black color, or AVL subtree height
//
// Maintenance-local fields (plain atomics, never part of a read/write set,
// exactly like the paper's node-local height estimates, §3.1):
//
//	LeftH, RightH — estimated heights of the child subtrees
//	LocalH        — expected local height (1 + max of the two)
//
// Layout: the struct is exactly three 64-byte cache lines, grouped by
// access pattern. Line one holds what a search traversal touches at every
// hop (Key to branch, L/R to descend, Rem to reject removed nodes); line
// two holds what only the found node or an update touches (Del/Val at the
// candidate, P and Aux for the rotating/recoloring trees); line three is
// maintenance-local state plus the free-list link. Chunks are 64-byte
// aligned (they are large heap objects) and 192 is a multiple of 64, so
// every node's lines coincide with hardware lines — a k-node traversal
// costs k data lines instead of up to 2k with the unpadded 152-byte
// layout. The trailing padding buys back its 26% size cost by halving the
// lines a traversal misses on.
type Node struct {
	Key stm.Word
	L   stm.Word
	R   stm.Word
	Rem stm.Word

	Del stm.Word
	Val stm.Word
	P   stm.Word
	Aux stm.Word

	LeftH  atomic.Int32
	RightH atomic.Int32
	LocalH atomic.Int32

	// Hint is the maintenance-hint dedup word: it holds the priority of
	// the hint currently queued for this node (0 none, 1 rebalance,
	// 2 removal — sftree's hint levels), so a hot node never floods the
	// bounded hint queue and a removal is never folded into a queued
	// lower-priority rebalance. Cleared when a maintenance worker consumes
	// the owning hint. Advisory only — a spurious clear (node recycled
	// while a stale hint was queued) merely lets a duplicate hint through.
	Hint atomic.Uint32

	nextFree Ref // free-list link, guarded by the arena mutex

	_ [40]byte // pad to 3 full cache lines; see the layout comment
}

// Rem flag values (paper §3.3: false, true, true-by-left-rotate).
const (
	RemFalse         = uint64(0)
	RemTrue          = uint64(1)
	RemTrueByLeftRot = uint64(2)
)

// Removed reports whether a Rem word value means "physically removed"
// (the paper treats true-by-left-rotate as true everywhere except one
// branch of the optimized find).
func Removed(rem uint64) bool { return rem != RemFalse }

type chunk [chunkSize]Node

// Arena is a grow-only chunked allocator of Nodes with an intrusive free
// list. Alloc and Free take a mutex (allocation is off the common read path
// of every benchmark: only effective inserts and the maintenance thread
// touch it); Get is wait-free.
//
// The chunk directory is a fixed inline array of atomic chunk pointers
// rather than an atomically published slice: resolving a Ref then costs
// one dependent load (the chunk pointer) instead of three (slice-header
// pointer → slice header → chunk pointer). Get runs once per traversal
// hop in every tree, and that dependent-load chain sat at the top of the
// CPU profile. The directory costs 64 KiB per arena — one arena per tree
// shard — and caps capacity at maxChunks chunks, enforced by the bounds
// check in Alloc.
type Arena struct {
	chunkPtr [maxChunks]atomic.Pointer[chunk]
	nChunks  atomic.Uint64

	mu       sync.Mutex
	freeHead Ref
	next     uint64 // bump pointer; slot 0 is burned for Nil

	allocs atomic.Uint64
	frees  atomic.Uint64
	reuses atomic.Uint64
}

// New creates an arena with one chunk pre-allocated. Slot 0 is reserved so
// that the zero Ref is never a valid node.
func New() *Arena {
	a := &Arena{next: 1}
	a.chunkPtr[0].Store(&chunk{})
	a.nChunks.Store(1)
	return a
}

// Get resolves a Ref to its node. It panics on Nil or out-of-range refs
// (the latter via the compiler's bounds check on the chunk directory, or a
// nil-chunk dereference for a never-allocated slot): all indicate a bug in
// the caller, never a recoverable condition.
//
// Get runs once per traversal hop in every tree, so it must inline into
// its callers — a measured double-digit share of traversal CPU went to the
// call overhead alone. The constant-string panic is nearly free for the
// inlining budget; a formatted message (fmt.Sprintf) would push Get past
// it, which is why range violations are left to the runtime checks.
func (a *Arena) Get(r Ref) *Node {
	if r == Nil {
		panic("arena: Get(Nil)")
	}
	return &a.chunkPtr[r>>chunkBits].Load()[r&chunkMask]
}

// Alloc returns a fresh (or recycled) node initialized with the given key
// and value, no children, Del=false, Rem=false, and the paper's initial
// height estimates (left-h = right-h = 0, local-h = 1). The node is private
// to the caller until it publishes the Ref with a transactional write.
func (a *Arena) Alloc(key, val uint64) Ref {
	a.mu.Lock()
	var r Ref
	if a.freeHead != Nil {
		r = a.freeHead
		a.freeHead = a.get(r).nextFree
		a.reuses.Add(1)
	} else {
		r = a.next
		ci := r >> chunkBits
		if ci >= maxChunks {
			// Off the hot path, so a formatted message is affordable: the
			// fixed chunk directory is a hard capacity cap, and a bare
			// index-out-of-range panic here would be opaque.
			a.mu.Unlock()
			panic(fmt.Sprintf("arena: capacity exceeded: %d chunks × %d nodes (%d nodes); shard the workload across more arenas",
				maxChunks, chunkSize, uint64(maxChunks)*chunkSize))
		}
		a.next++
		if a.chunkPtr[ci].Load() == nil {
			a.chunkPtr[ci].Store(&chunk{})
			a.nChunks.Store(ci + 1)
		}
	}
	a.mu.Unlock()
	a.allocs.Add(1)

	n := a.Get(r)
	n.Key.SetPlain(key)
	n.Val.SetPlain(val)
	n.L.SetPlain(Nil)
	n.R.SetPlain(Nil)
	n.P.SetPlain(Nil)
	n.Del.SetPlain(0)
	n.Rem.SetPlain(RemFalse)
	n.Aux.SetPlain(0)
	n.LeftH.Store(0)
	n.RightH.Store(0)
	n.LocalH.Store(1)
	n.Hint.Store(0)
	return r
}

// Reinit resets a node the caller privately owns (allocated but never
// published) to the same state Alloc would produce for (key, val). It lets
// operations preallocate one scratch node and retarget it across retries of
// an enclosing transaction.
func (a *Arena) Reinit(r Ref, key, val uint64) {
	n := a.Get(r)
	n.Key.SetPlain(key)
	n.Val.SetPlain(val)
	n.L.SetPlain(Nil)
	n.R.SetPlain(Nil)
	n.P.SetPlain(Nil)
	n.Del.SetPlain(0)
	n.Rem.SetPlain(RemFalse)
	n.Aux.SetPlain(0)
	n.LeftH.Store(0)
	n.RightH.Store(0)
	n.LocalH.Store(1)
	n.Hint.Store(0)
}

// get resolves without the Nil check; caller holds the mutex or owns r.
func (a *Arena) get(r Ref) *Node {
	return &a.chunkPtr[r>>chunkBits].Load()[r&chunkMask]
}

// Free returns a node to the free list. The caller must guarantee that no
// other thread can still reach the node — either because the node was never
// published (an insert that lost its transaction) or because an epoch of the
// Collector has passed since it was unlinked.
func (a *Arena) Free(r Ref) {
	if r == Nil {
		panic("arena: Free(Nil)")
	}
	a.mu.Lock()
	n := a.get(r)
	n.nextFree = a.freeHead
	a.freeHead = r
	a.mu.Unlock()
	a.frees.Add(1)
}

// Scratch manages the one-node preallocation pattern used by insert-style
// operations: a transaction attempt may need a fresh node, attempts can be
// re-executed arbitrarily often, and only the final (committed) attempt
// decides whether the node was actually linked into a structure. Scratch
// reuses a single arena slot across attempts and releases it afterwards if
// the committed attempt did not link it.
//
// Usage inside the retried transaction function:
//
//	sc.ResetAttempt()            // first thing in every attempt
//	ref := sc.Take(ar, key, val) // when a node is needed
//	tx.Write(&parent.L, ref)     // publish
//	sc.MarkLinked()
//
// and after the Atomic call returns: sc.Release(ar).
type Scratch struct {
	ref    Ref
	linked bool
}

// ResetAttempt clears the linked mark; call at the start of every attempt.
func (s *Scratch) ResetAttempt() { s.linked = false }

// Take returns the scratch node initialized for (key, val), allocating it on
// first use and re-initializing it on retries.
func (s *Scratch) Take(a *Arena, key, val uint64) Ref {
	if s.ref == Nil {
		s.ref = a.Alloc(key, val)
	} else {
		a.Reinit(s.ref, key, val)
	}
	return s.ref
}

// MarkLinked records that the current attempt published the node.
func (s *Scratch) MarkLinked() { s.linked = true }

// Ref returns the scratch node's reference (Nil when never taken).
func (s *Scratch) Node() Ref { return s.ref }

// Release frees the node unless the final attempt linked it, then resets.
// Erring on the side of not freeing is deliberate: leaking one node is
// benign, freeing a published one is not.
func (s *Scratch) Release(a *Arena) {
	if s.ref != Nil && !s.linked {
		a.Free(s.ref)
	}
	s.ref = Nil
	s.linked = false
}

// Live returns the number of nodes currently allocated and not freed.
func (a *Arena) Live() uint64 { return a.allocs.Load() - a.frees.Load() }

// Allocs returns the cumulative number of Alloc calls.
func (a *Arena) Allocs() uint64 { return a.allocs.Load() }

// Frees returns the cumulative number of Free calls.
func (a *Arena) Frees() uint64 { return a.frees.Load() }

// Reuses returns how many allocations were satisfied from the free list.
func (a *Arena) Reuses() uint64 { return a.reuses.Load() }

// Cap returns the current capacity in nodes (excluding the burned slot 0).
func (a *Arena) Cap() uint64 {
	return a.nChunks.Load()*chunkSize - 1
}
