package arena

import "repro/internal/stm"

// Collector implements the garbage-collection scheme of paper §3.4,
// verbatim:
//
//	"Nodes that are successfully removed are then added to a garbage
//	 collection list. Each application thread maintains a boolean indicating
//	 a pending operation and a counter indicating the number of completed
//	 operations. Before starting a traversal, the rotator thread sets a
//	 pointer to what is currently the end of the garbage collection list and
//	 copies all booleans and counters. After a traversal, if for every
//	 thread its counter has increased or if its boolean is false then the
//	 nodes up to the previously stored end pointer can be safely freed."
//
// The pending flag and operation counter live on stm.Thread (raised and
// incremented by Thread.Atomic), so any operation that could hold a node
// reference is covered. The Collector itself is single-owner: only the
// maintenance thread calls its methods.
type Collector struct {
	ar   *Arena
	list []Ref // unlink-ordered garbage, oldest first

	mark int // end-of-list snapshot taken by BeginEpoch
	snap []threadSnap
}

type threadSnap struct {
	th      *stm.Thread
	pending bool
	count   uint64
}

// NewCollector creates a collector freeing into ar.
func NewCollector(ar *Arena) *Collector {
	return &Collector{ar: ar}
}

// Defer queues a physically removed node for reclamation after a safe epoch.
func (c *Collector) Defer(r Ref) {
	c.list = append(c.list, r)
}

// PendingCount returns the number of queued, not-yet-freed nodes.
func (c *Collector) PendingCount() int { return len(c.list) }

// BeginEpoch snapshots the end of the garbage list and every thread's
// pending flag and operation counter. Call it before a maintenance
// traversal.
func (c *Collector) BeginEpoch(threads []*stm.Thread) {
	c.mark = len(c.list)
	c.snap = c.snap[:0]
	for _, th := range threads {
		c.snap = append(c.snap, threadSnap{
			th:      th,
			pending: th.Pending(),
			count:   th.OpCount(),
		})
	}
}

// TryFree frees the nodes queued before the last BeginEpoch if every
// snapshotted thread has since completed an operation or was idle at
// snapshot time. It returns the number of nodes freed (0 when the epoch has
// not expired). Call it after the maintenance traversal.
func (c *Collector) TryFree() int {
	if c.mark == 0 {
		return 0
	}
	for _, s := range c.snap {
		if !s.pending {
			continue // was idle: held no references at snapshot time
		}
		if s.th.OpCount() == s.count {
			// Still (or again) inside the same operation: unsafe.
			return 0
		}
	}
	n := c.mark
	for _, r := range c.list[:n] {
		c.ar.Free(r)
	}
	c.list = append(c.list[:0], c.list[n:]...)
	c.mark = 0
	return n
}
