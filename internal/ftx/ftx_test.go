package ftx_test

import (
	"errors"
	"testing"

	"repro/internal/forest"
	"repro/internal/ftx"
	"repro/internal/stm"
	"repro/internal/trees"
)

// crossPair returns two keys on different shards of f.
func crossPair(t *testing.T, f *forest.Forest) (a, b uint64) {
	t.Helper()
	a = 100
	for k := uint64(101); k < 100000; k++ {
		if !f.SameShard(a, k) {
			return a, k
		}
	}
	t.Fatal("no cross-shard pair found")
	return 0, 0
}

// TestRunCrossShardTransfer: the canonical ledger transfer across shards —
// both effects commit, observed by plain readers afterwards.
func TestRunCrossShardTransfer(t *testing.T) {
	for _, kind := range trees.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			f := forest.New(kind, forest.WithShards(4), forest.WithoutMaintenance())
			defer f.Close()
			h := f.NewHandle()
			a, b := crossPair(t, f)
			h.Insert(a, 70)
			h.Insert(b, 30)

			err := h.Atomic(func(tx *ftx.Tx) error {
				av, _ := tx.Get(a)
				bv, _ := tx.Get(b)
				tx.Put(a, av-25)
				tx.Put(b, bv+25)
				return nil
			})
			if err != nil {
				t.Fatalf("Atomic: %v", err)
			}
			if v, ok := h.Get(a); !ok || v != 45 {
				t.Fatalf("a = %d,%t want 45", v, ok)
			}
			if v, ok := h.Get(b); !ok || v != 55 {
				t.Fatalf("b = %d,%t want 55", v, ok)
			}
			st := h.XactStats()
			if st.Commits != 1 || st.Fallbacks != 0 {
				t.Fatalf("stats %+v: want 1 cross-shard commit, 0 fallbacks", st)
			}
		})
	}
}

// TestRunUserAbort: a non-nil error from fn applies nothing and is
// returned verbatim.
func TestRunUserAbort(t *testing.T) {
	f := forest.New(trees.SFOpt, forest.WithShards(4), forest.WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	a, b := crossPair(t, f)
	h.Insert(a, 1)

	boom := errors.New("boom")
	err := h.Atomic(func(tx *ftx.Tx) error {
		tx.Put(b, 99)
		tx.Delete(a)
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the fn error", err)
	}
	if !h.Contains(a) || h.Contains(b) {
		t.Fatal("aborted transaction applied effects")
	}
	if st := h.XactStats(); st.Commits != 0 || st.UserAborts != 1 {
		t.Fatalf("stats %+v: want 0 commits, 1 user abort", st)
	}
}

// TestTxReadYourWrites: buffered effects are visible to later reads of the
// same transaction, and Insert/Delete report presence against the buffer.
func TestTxReadYourWrites(t *testing.T) {
	f := forest.New(trees.SF, forest.WithShards(4), forest.WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	a, b := crossPair(t, f)
	h.Insert(a, 11)

	err := h.Atomic(func(tx *ftx.Tx) error {
		if v, ok := tx.Get(a); !ok || v != 11 {
			t.Errorf("Get(a) = %d,%t want 11", v, ok)
		}
		tx.Put(a, 12)
		if v, ok := tx.Get(a); !ok || v != 12 {
			t.Errorf("Get(a) after Put = %d,%t want 12", v, ok)
		}
		if !tx.Delete(a) {
			t.Error("Delete(a) of a buffered put reported absent")
		}
		if tx.Contains(a) {
			t.Error("Contains(a) after buffered Delete")
		}
		if tx.Delete(a) {
			t.Error("second Delete(a) reported present")
		}
		if !tx.Insert(b, 5) {
			t.Error("Insert(b) of an absent key failed")
		}
		if tx.Insert(b, 6) {
			t.Error("second Insert(b) succeeded over the buffer")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if h.Contains(a) {
		t.Fatal("a still present: buffered delete not applied")
	}
	if v, ok := h.Get(b); !ok || v != 5 {
		t.Fatalf("b = %d,%t want 5 (the first Insert's value)", v, ok)
	}
}

// TestRunSingleShardFallback: a transaction whose keys all land on one
// shard must take the fallback fast path, counted as such.
func TestRunSingleShardFallback(t *testing.T) {
	f := forest.New(trees.SFOpt, forest.WithShards(4), forest.WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	// Two keys on the same shard.
	a := uint64(100)
	b := a
	for k := uint64(101); k < 100000; k++ {
		if f.SameShard(a, k) {
			b = k
			break
		}
	}
	if b == a {
		t.Fatal("no co-located pair found")
	}
	h.Insert(a, 10)
	if err := h.Atomic(func(tx *ftx.Tx) error {
		v, _ := tx.Get(a)
		tx.Put(b, v)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	st := h.XactStats()
	if st.Commits != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats %+v: want 1 commit via the single-shard fallback", st)
	}
	if v, ok := h.Get(b); !ok || v != 10 {
		t.Fatalf("b = %d,%t want 10", v, ok)
	}
}

// TestSingleDomain: the degenerate one-shard Domain (Single) runs the same
// API over a bare tree and always falls back.
func TestSingleDomain(t *testing.T) {
	s := stm.New()
	m := trees.New(trees.SFOpt, s)
	d := ftx.Single(m, s.NewThread())
	c := ftx.NewCoordinator(d)
	if err := c.Run(func(tx *ftx.Tx) error {
		tx.Put(1, 100)
		tx.Put(2, 200)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := c.Run(func(tx *ftx.Tx) error {
		v1, ok1 := tx.Get(1)
		v2, ok2 := tx.Get(2)
		if !ok1 || !ok2 || v1 != 100 || v2 != 200 {
			t.Errorf("read back %d,%t %d,%t", v1, ok1, v2, ok2)
		}
		tx.Delete(1)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := c.Stats()
	if st.Commits != 2 || st.Fallbacks != 2 {
		t.Fatalf("stats %+v: want every commit on the fallback path", st)
	}
	th := s.NewThread()
	if m.Contains(th, 1) || !m.Contains(th, 2) {
		t.Fatal("final state wrong")
	}
}

// TestRunEmptyTransaction: fn touching nothing commits trivially.
func TestRunEmptyTransaction(t *testing.T) {
	f := forest.New(trees.SF, forest.WithShards(2), forest.WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	if err := h.Atomic(func(tx *ftx.Tx) error { return nil }); err != nil {
		t.Fatalf("empty Atomic: %v", err)
	}
	if st := h.XactStats(); st.Commits != 1 {
		t.Fatalf("stats %+v, want 1 commit", st)
	}
}

// TestRunReadOnlyFastPath: a cross-shard transaction that writes nothing
// must commit through the read-only fast path — no intents, no prepares —
// and still return a consistent view.
func TestRunReadOnlyFastPath(t *testing.T) {
	f := forest.New(trees.SFOpt, forest.WithShards(4), forest.WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	a, b := crossPair(t, f)
	h.Insert(a, 7)
	h.Insert(b, 9)

	prepBefore := f.Stats().Prepares
	var av, bv uint64
	if err := h.Atomic(func(tx *ftx.Tx) error {
		av, _ = tx.Get(a)
		bv, _ = tx.Get(b)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if av != 7 || bv != 9 {
		t.Fatalf("read %d,%d want 7,9", av, bv)
	}
	st := h.XactStats()
	if st.Commits != 1 || st.ReadOnly != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats %+v: want 1 commit via the read-only fast path", st)
	}
	if st.IntentConflicts != 0 {
		t.Fatalf("stats %+v: read-only path acquired intents", st)
	}
	if prepAfter := f.Stats().Prepares; prepAfter != prepBefore {
		t.Fatalf("Prepares went %d -> %d: read-only path ran prepare", prepBefore, prepAfter)
	}
	// A writing transaction over the same keys must still take the full
	// protocol (the fast path is for no-write transactions only).
	if err := h.Atomic(func(tx *ftx.Tx) error {
		v, _ := tx.Get(a)
		tx.Put(b, v)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if st := h.XactStats(); st.ReadOnly != 1 || st.Commits != 2 {
		t.Fatalf("stats %+v: writing transaction misrouted to the read-only path", st)
	}
}

// TestRunRevalidationRetry: fn's observations change between execution and
// commit — the coordinator must re-execute and commit the fresh view, never
// the stale one.
func TestRunRevalidationRetry(t *testing.T) {
	f := forest.New(trees.SFOpt, forest.WithShards(4), forest.WithoutMaintenance())
	defer f.Close()
	h := f.NewHandle()
	h2 := f.NewHandle()
	a, b := crossPair(t, f)
	h.Insert(a, 1)

	execs := 0
	err := h.Atomic(func(tx *ftx.Tx) error {
		execs++
		v, _ := tx.Get(a)
		if execs == 1 {
			// Invalidate the read after it was logged: another handle bumps
			// a. The commit's replay must catch the mismatch and re-run fn.
			h2.Delete(a)
			h2.Insert(a, 2)
		}
		tx.Put(b, v*10)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if execs < 2 {
		t.Fatalf("fn executed %d times, want re-execution after invalidation", execs)
	}
	if v, ok := h.Get(b); !ok || v != 20 {
		t.Fatalf("b = %d,%t want 20 (committed from the fresh read)", v, ok)
	}
	if st := h.XactStats(); st.Aborts == 0 {
		t.Fatalf("stats %+v: the stale attempt was not counted aborted", st)
	}
}
