package ftx

import (
	"repro/internal/stm"
)

// readRec is one logged execution-phase read: the key and the committed
// (value, presence) fn observed. At commit every logged read is re-read
// inside the owning shard's sub-transaction; any difference aborts the
// attempt and re-executes fn.
type readRec struct {
	key     uint64
	val     uint64
	present bool
}

// writeRec is the buffered final state of one written key: a put of val,
// or a deletion.
type writeRec struct {
	key uint64
	val uint64
	del bool
}

// Tx is the buffering transaction handed to Run's fn. Reads go through to
// the owning shard, served from one open read-only snapshot session per
// participating shard (stm.Snapshot) — the batched-execution-reads regime:
// every cache-miss read of a shard joins the same snapshot transaction
// instead of paying one committed read-only transaction per distinct key.
// Reads are cached so repeated reads are repeatable and free; writes buffer
// their per-key final state locally. The Tx provides read-your-writes: a
// read of a key the transaction has written sees the buffered effect, not
// the shard.
//
// Each shard's reads are consistent within their snapshot era (a session
// that cannot be extended over a concurrent commit resets and continues,
// exactly as consistent as the per-key regime it replaces); reads across
// shards are made mutually consistent only at commit, where every logged
// read is replayed and validated inside the owning shard's sub-transaction.
//
// A Tx is only valid inside the fn invocation it was passed to; fn may run
// multiple times (each time with a fresh Tx), so it must not have side
// effects beyond the Tx and locals it re-assigns.
type Tx struct {
	d      Domain
	reads  map[uint64]readRec
	writes map[uint64]writeRec
	snaps  map[int]*stm.Snapshot // per-shard execution-read sessions
}

func newTx(d Domain) *Tx {
	return &Tx{
		d:      d,
		reads:  make(map[uint64]readRec),
		writes: make(map[uint64]writeRec),
	}
}

// read returns the logged read for k, reading through to the owning
// shard's snapshot session on first touch.
func (t *Tx) read(k uint64) readRec {
	si := t.d.ShardOf(k)
	if r, ok := t.reads[k]; ok {
		return r
	}
	sh := t.d.Shard(si)
	if t.snaps == nil {
		t.snaps = make(map[int]*stm.Snapshot)
	}
	s := t.snaps[si]
	if s == nil {
		s = sh.Thread.NewSnapshot()
		t.snaps[si] = s
	}
	r := readRec{key: k}
	// A false Read means the session's snapshot could not be extended over
	// a concurrent commit and has reset; the retried call starts fresh.
	// Earlier cached reads of this shard stay logged as observed — commit
	// revalidates every one of them inside the shard's sub-transaction.
	for !s.Read(func(tx *stm.Tx) { r.val, r.present = sh.Map.GetTx(tx, k) }) {
	}
	t.reads[k] = r
	return r
}

// close ends the per-shard snapshot sessions (the threads' session slots
// are singletons, so the next attempt's Tx can open its own).
func (t *Tx) close() {
	for _, s := range t.snaps {
		s.Close()
	}
	t.snaps = nil
}

// Get returns the value at k as observed by this transaction.
func (t *Tx) Get(k uint64) (uint64, bool) {
	if w, ok := t.writes[k]; ok {
		if w.del {
			return 0, false
		}
		return w.val, true
	}
	r := t.read(k)
	return r.val, r.present
}

// Contains reports whether k is present as observed by this transaction.
func (t *Tx) Contains(k uint64) bool {
	_, ok := t.Get(k)
	return ok
}

// Put maps k to v unconditionally (an upsert). It performs no read: a
// blind Put of a key the transaction never read adds nothing to the
// validation set.
func (t *Tx) Put(k, v uint64) {
	t.writes[k] = writeRec{key: k, val: v}
}

// Insert maps k to v if k is absent as observed by this transaction,
// reporting whether it did.
func (t *Tx) Insert(k, v uint64) bool {
	if t.Contains(k) {
		return false
	}
	t.writes[k] = writeRec{key: k, val: v}
	return true
}

// Delete removes k, reporting whether it was present as observed by this
// transaction.
func (t *Tx) Delete(k uint64) bool {
	if w, ok := t.writes[k]; ok {
		if w.del {
			return false
		}
		t.writes[k] = writeRec{key: k, del: true}
		return true
	}
	if !t.read(k).present {
		// Logged as absent: the commit validates it stayed absent, so the
		// no-op outcome linearizes correctly with no buffered write.
		return false
	}
	t.writes[k] = writeRec{key: k, del: true}
	return true
}
