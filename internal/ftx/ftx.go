// Package ftx implements cross-shard atomic transactions: a forest-level
// coordinator that lets one transaction read and write keys owned by
// different STM-domain shards, committing all of its effects atomically or
// none of them. It is the layer the ROADMAP's "forest-level 2PC or intent
// log" item asked for: where the sharded forest used to offer only
// best-effort two-phase compensation for its one composed cross-shard
// operation (Move), ftx gives arbitrary multi-key transactions —
// transfer/ledger-style workloads — over the whole key space.
//
// # Programming model
//
//	err := ftx.Run(domain, func(t *ftx.Tx) error {
//		v, ok := t.Get(src)
//		if !ok || t.Contains(dst) {
//			return errSkip // any non-nil error: nothing is applied
//		}
//		t.Delete(src)
//		t.Put(dst, v)
//		return nil
//	})
//
// The function body executes against a buffering Tx: Get/Contains read
// through to the owning shard (one committed read transaction per distinct
// key, cached for repeatable reads), Put/Delete/Insert buffer their effect
// locally. Nothing touches shared state until fn returns nil; returning an
// error aborts the transaction with nothing applied. Like stm.Thread.Atomic,
// fn may be re-executed when the commit loses a conflict, so it must be free
// of side effects beyond the Tx and locals it re-assigns.
//
// # Commit protocol
//
// Commit is a deterministic shard-ordered two-phase commit over the
// per-shard STM domains:
//
//  1. Intents. The coordinator registers an exclusive intent on every
//     touched key (reads and writes) in its per-shard intent table, in
//     ascending (shard, key) order. Intents are what serializes conflicting
//     ftx transactions with each other: two coordinators sharing a key can
//     never both be inside their prepare window, which closes the
//     cross-shard read-write cycles that per-shard validation alone cannot
//     see. A conflict releases everything and retries through the
//     contention manager.
//  2. Prepare. For each participating shard in ascending shard index, the
//     coordinator runs one sub-transaction (stm.Thread.Prepare, always CTL)
//     that re-reads every logged read — aborting if any differs from what
//     fn observed — and applies the buffered writes, then holds the
//     attempt at its lock point: validated, write-locked, unpublished.
//  3. Finalize or roll back. Once every shard is prepared the coordinator
//     finalizes them all (stm.Prepared.Finalize, ascending); if any shard
//     fails to prepare, the already-prepared shards are dropped
//     (stm.Prepared.Drop) with nothing published anywhere, and the whole
//     transaction re-executes after a contention-manager stall.
//
// # Why this is atomic and deadlock-free
//
// Atomicity: a shard's sub-transaction holds all of its write locks from
// prepare to finalize, so no concurrent shard-local transaction can read or
// overwrite any word the coordinator is about to publish — a reader of a
// half-committed state necessarily touches a locked word and aborts. All
// logged reads were simultaneously valid at the first shard's lock point
// (each was validated at its own shard's prepare, and intents plus the held
// locks keep conflicting ftx commits out of the whole window), which makes
// that lock point the transaction's serialization point.
//
// Deadlock-freedom: nothing in the protocol blocks while holding a
// resource. Intent acquisition is try-acquire in a deterministic global
// order (ascending shard, then key) and releases everything on conflict;
// prepare's lock acquisition is try-lock (a lost CAS aborts the attempt);
// finalize releases locks unconditionally. Livelock between contenders is
// damped by the same pluggable contention-manager backoff the STM's
// lifecycle engine uses, and the ascending orders make the common conflict
// pattern (two transfers over the same accounts) resolve by one side
// winning the lowest-ordered intent.
//
// Single-shard transactions — including every transaction on a one-shard
// domain — skip the protocol entirely and commit as one ordinary atomic
// transaction (the fallback fast path, counted in Stats.Fallbacks).
package ftx

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/trees"
)

// Flight-recorder thresholds: a prepare phase slower than this, or an
// attempt aborting after this many retries, is notable enough for the ring
// (recording every one would flood it on a contended transfer workload).
const (
	ftxPrepareSlowNanos = int64(100_000) // 100µs
	ftxAbortStormRetry  = 3
)

// Abort-cause codes carried by EvFtxAbort's B payload.
const (
	ftxAbortIntent  = 0 // another coordinator's intent on a shared key
	ftxAbortPrepare = 1 // read revalidation or lock race inside prepare
	ftxAbortReplay  = 2 // revalidation mismatch on the single-shard/read-only path
)

// Shard is the caller-local access surface of one participating shard: the
// shard's tree, the calling goroutine's STM thread registered with the
// shard's domain, and the shard's intent table (shared by every coordinator
// of the forest).
type Shard struct {
	Map     trees.Map
	Thread  *stm.Thread
	Intents *IntentTable
}

// Domain is the sharded substrate a coordinator drives. forest.Handle
// adapts itself to it; Single wraps a bare (map, thread) pair as the
// degenerate one-shard domain.
//
// Shard(si) may be called repeatedly for the same index and must return a
// consistent view; like the rest of the per-goroutine accessor surface it
// is not safe for concurrent use.
type Domain interface {
	// Shards reports the number of partitions.
	Shards() int
	// ShardOf returns the index of the shard owning key k.
	ShardOf(k uint64) int
	// Shard returns the access surface of shard si.
	Shard(si int) Shard
}

// Stats counts a coordinator's activity. All fields are monotonically
// increasing; Commits-Fallbacks is the number of genuine cross-shard
// two-phase commits.
type Stats struct {
	// Commits counts committed transactions (both protocol paths).
	Commits uint64
	// Fallbacks counts the subset of Commits that took the single-shard
	// fast path: every touched key lived on one shard, so the transaction
	// committed as one ordinary atomic transaction with no intents, no
	// prepare and no cross-shard window.
	Fallbacks uint64
	// ReadOnly counts the subset of Commits that took the read-only
	// cross-shard fast path: the transaction wrote nothing, so it skipped
	// intents and prepare entirely and validated with a double read of the
	// participating shards' version clocks (see commitReadOnly).
	ReadOnly uint64
	// Aborts counts failed commit attempts that were retried: read
	// revalidation mismatches, lost lock races, and intent conflicts.
	Aborts uint64
	// IntentConflicts counts the subset of Aborts caused by another
	// coordinator's intent on a shared key.
	IntentConflicts uint64
	// UserAborts counts transactions abandoned because fn returned an
	// error (nothing applied, not retried).
	UserAborts uint64
}

// Add accumulates o into s (aggregation across coordinators).
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Fallbacks += o.Fallbacks
	s.ReadOnly += o.ReadOnly
	s.Aborts += o.Aborts
	s.IntentConflicts += o.IntentConflicts
	s.UserAborts += o.UserAborts
}

// Indices of the Stats fields inside the seqlock-published live mirror
// (see Coordinator.publish).
const (
	liveCommits = iota
	liveFallbacks
	liveReadOnly
	liveAborts
	liveIntentConflicts
	liveUserAborts
	liveFields
)

// Coordinator runs cross-shard transactions against one Domain. Like the
// handle it is built from, a Coordinator belongs to one goroutine.
type Coordinator struct {
	d     Domain
	stats Stats
	// live is the seqlock-published mirror of stats: the owning goroutine
	// republishes the whole struct once per Run iteration, and Stats()
	// reads it under the seqlock, so a concurrent reader gets one
	// consistent multi-field snapshot rather than the torn field-by-field
	// view plain loads would give.
	live *obs.Group

	// wal, when set, receives one durable record per committed transaction:
	// an atomic multi-shard record emitted at finalize (so the commit's
	// atomicity carries onto disk — the record is wholly present or wholly
	// torn), or an ordinary update record for the single-shard fallback.
	wal *durable.Log
	// opbuf is the reusable single-shard record buffer; clkbuf the reusable
	// clock-sample buffer of the read-only fast path.
	opbuf  []durable.Op
	clkbuf []uint64

	// fr is the optional flight recorder (slow prepares, abort storms). An
	// atomic pointer because the forest attaches it while the owning
	// goroutine may be mid-transaction.
	fr atomic.Pointer[obs.FlightRecorder]

	// Trace context: the facade attaches a sampled operation's (tracer, id)
	// before Run and clears it after (SetTraceContext); while set, commit
	// phases record SpanFtxIntent/Prepare/Finalize spans. Owner-goroutine
	// plain fields, like stats. lastAbortCause remembers why the most
	// recent commitCross attempt failed, for the abort-storm flight event.
	tr             *obs.Tracer
	traceID        uint64
	lastAbortCause int64
}

// NewCoordinator returns a coordinator for d.
func NewCoordinator(d Domain) *Coordinator {
	return &Coordinator{d: d, live: obs.NewGroup(liveFields)}
}

// SetWAL attaches a write-ahead log: every transaction the coordinator
// commits from now on is logged. Set before the coordinator is used.
func (c *Coordinator) SetWAL(l *durable.Log) { c.wal = l }

// SetFlightRecorder attaches a flight recorder: slow prepare phases and
// abort storms record into it. Safe to call from any goroutine; nil
// detaches.
func (c *Coordinator) SetFlightRecorder(fr *obs.FlightRecorder) { c.fr.Store(fr) }

// SetTraceContext attaches a sampled operation's trace context: while id is
// non-zero the commit protocol records its phase spans under it. Pass
// (nil, 0) to clear. Owner-goroutine only, like Run.
func (c *Coordinator) SetTraceContext(tr *obs.Tracer, id uint64) {
	c.tr = tr
	c.traceID = id
}

// publish republishes the owner-side counters into the live mirror; called
// by the owning goroutine once per Run iteration (a handful of atomic
// stores per whole cross-shard transaction — noise next to the protocol).
func (c *Coordinator) publish() {
	c.live.Begin()
	c.live.Set(liveCommits, c.stats.Commits)
	c.live.Set(liveFallbacks, c.stats.Fallbacks)
	c.live.Set(liveReadOnly, c.stats.ReadOnly)
	c.live.Set(liveAborts, c.stats.Aborts)
	c.live.Set(liveIntentConflicts, c.stats.IntentConflicts)
	c.live.Set(liveUserAborts, c.stats.UserAborts)
	c.live.End()
}

// Stats returns a consistent snapshot of the coordinator's counters. Safe
// to call from any goroutine at any time: it reads the seqlock-published
// mirror, never the owner's plain fields, so the returned struct is one
// coherent publish — no torn multi-field reads.
func (c *Coordinator) Stats() Stats {
	var v [liveFields]uint64
	c.live.Read(v[:])
	return Stats{
		Commits:         v[liveCommits],
		Fallbacks:       v[liveFallbacks],
		ReadOnly:        v[liveReadOnly],
		Aborts:          v[liveAborts],
		IntentConflicts: v[liveIntentConflicts],
		UserAborts:      v[liveUserAborts],
	}
}

// Run executes fn as one atomic cross-shard transaction (see the package
// comment for the protocol), retrying on conflict until it commits. It
// returns nil on commit; a non-nil error from fn aborts the transaction
// with nothing applied and is returned verbatim.
func (c *Coordinator) Run(fn func(*Tx) error) error {
	retries := 0
	for {
		t := newTx(c.d)
		parts, err, committed := c.attempt(t, fn)
		if err != nil {
			c.stats.UserAborts++
			c.publish()
			return err
		}
		if committed {
			c.publish()
			if len(parts) > 0 {
				cm := parts[0].sh.Thread.STM().ContentionManager()
				cm.OnCommit(parts[0].sh.Thread, retries)
			}
			return nil
		}
		c.stats.Aborts++
		c.publish()
		retries++
		if retries >= ftxAbortStormRetry {
			// An abort storm: the same transaction keeps losing. Record one
			// flight event per retry past the threshold (not per abort, so a
			// contended-but-progressing workload doesn't flood the ring).
			c.fr.Load().Record(obs.EvFtxAbort, 0, int64(len(parts)), c.lastAbortCause)
		}
		if len(parts) > 0 {
			// Stall through the lowest participating shard's contention
			// manager, charging the retry to that shard's thread.
			parts[0].sh.Thread.CoordinatedAbort(retries)
		}
	}
}

// attempt runs one execution+commit cycle of fn on a fresh Tx, closing the
// Tx's per-shard snapshot sessions on every exit path (the thread session
// slots are singletons, and a foreign panic out of fn must not leak them).
func (c *Coordinator) attempt(t *Tx, fn func(*Tx) error) (parts []*participant, userErr error, committed bool) {
	defer t.close()
	if err := fn(t); err != nil {
		return nil, err, false
	}
	parts = t.participants()
	return parts, nil, c.commit(parts)
}

// Run executes fn as one atomic cross-shard transaction on a throwaway
// coordinator; callers who want Stats keep a Coordinator instead.
func Run(d Domain, fn func(*Tx) error) error {
	return NewCoordinator(d).Run(fn)
}

// single is the degenerate one-shard Domain.
type single struct {
	sh Shard
}

func (s *single) Shards() int        { return 1 }
func (s *single) ShardOf(uint64) int { return 0 }
func (s *single) Shard(int) Shard    { return s.sh }

// Single wraps one (map, thread) pair as a one-shard Domain: every
// transaction on it commits through the single-shard fast path, which makes
// the cross-shard API usable — and its cost comparable — on unsharded
// trees.
func Single(m trees.Map, th *stm.Thread) Domain {
	return &single{sh: Shard{Map: m, Thread: th, Intents: &IntentTable{}}}
}

// commit drives one attempt of the two-phase protocol over the
// participants, returning true when everything published.
func (c *Coordinator) commit(parts []*participant) bool {
	switch len(parts) {
	case 0:
		// fn touched nothing: an empty transaction commits trivially.
		c.stats.Commits++
		c.stats.Fallbacks++
		return true
	case 1:
		return c.commitSingle(parts[0])
	default:
		for _, p := range parts {
			if len(p.writes) > 0 {
				return c.commitCross(parts)
			}
		}
		return c.commitReadOnly(parts)
	}
}

// commitReadOnly commits a no-write cross-shard transaction without intents
// and without prepare: it samples every participating shard's version clock,
// revalidates each shard's logged reads in one ordinary read-only
// transaction, and re-samples the clocks — any clock that moved fails the
// attempt back to the coordinator's retry loop.
//
// Why the clock double-read is enough: a shard's clock advances only inside
// commit, after the committer has acquired its write locks and before it
// publishes and releases them (the GV4/GV5 protocol comment in stm's
// commit). So if a shard's clock reads the same before and after our
// replays, every writer that bumped that clock did so before our first
// sample — and such a writer's locks were either already released (its
// writes fully published before we read) or still held (our replay of any
// word it touches waits out the lock and sees the published value). Either
// way each replay observes a state that stays valid for the whole window,
// which makes all the per-shard replays simultaneously valid at the second
// sample: that instant is the transaction's serialization point. A
// read-only transaction never advances a clock itself, so the replays do
// not disturb the validation they are part of.
func (c *Coordinator) commitReadOnly(parts []*participant) bool {
	if cap(c.clkbuf) < len(parts) {
		c.clkbuf = make([]uint64, len(parts))
	}
	clocks := c.clkbuf[:len(parts)]
	for i, p := range parts {
		clocks[i] = p.sh.Thread.STM().Now()
	}
	for _, p := range parts {
		ok := false
		// Full read tracking (CTL), exactly as commitSingle: every replayed
		// read must be validated at the replay's own commit point.
		if c.traceID != 0 {
			p.sh.Thread.SetTraceContext(c.tr, c.traceID, obs.OpAtomic)
		}
		p.sh.Thread.AtomicMode(stm.CTL, func(tx *stm.Tx) {
			ok = replayReads(p.sh.Map, tx, p.reads)
		})
		if c.traceID != 0 {
			p.sh.Thread.SetTraceContext(nil, 0, 0)
		}
		if !ok {
			c.lastAbortCause = ftxAbortReplay
			return false
		}
	}
	for i, p := range parts {
		if p.sh.Thread.STM().Now() != clocks[i] {
			c.lastAbortCause = ftxAbortReplay
			return false
		}
	}
	c.stats.Commits++
	c.stats.ReadOnly++
	return true
}

// commitSingle is the fallback fast path: one participating shard, one
// ordinary atomic transaction. STM-level conflicts retry inside AtomicMode
// as usual; only a read-revalidation mismatch (the world moved since fn
// ran) escapes to the coordinator for full re-execution.
func (c *Coordinator) commitSingle(p *participant) bool {
	sh := p.sh
	ok := false
	// Full read tracking (CTL) regardless of the domain default: every
	// replayed read must be validated at commit, and an elastic cut would
	// drop exactly the validation the protocol depends on.
	if c.traceID != 0 {
		sh.Thread.SetTraceContext(c.tr, c.traceID, obs.OpAtomic)
	}
	sh.Thread.AtomicMode(stm.CTL, func(tx *stm.Tx) {
		ok = replayReads(sh.Map, tx, p.reads)
		if !ok {
			return // commit read-only; the coordinator re-executes fn
		}
		applyWrites(sh.Map, tx, p.writes)
		if c.wal != nil && len(p.writes) > 0 {
			c.opbuf = appendWriteOps(c.opbuf[:0], p.writes)
			tx.OnCommitted(func(pos uint64) { c.wal.LogUpdateT(p.si, pos, c.opbuf, c.traceID) })
		}
	})
	if c.traceID != 0 {
		sh.Thread.SetTraceContext(nil, 0, 0)
	}
	if ok {
		c.stats.Commits++
		c.stats.Fallbacks++
	} else {
		c.lastAbortCause = ftxAbortReplay
	}
	return ok
}

// appendWriteOps converts buffered write records to durable log ops.
func appendWriteOps(dst []durable.Op, writes []writeRec) []durable.Op {
	for i := range writes {
		w := &writes[i]
		dst = append(dst, durable.Op{Key: w.key, Val: w.val, Del: w.del})
	}
	return dst
}

// notePrepare closes the prepare phase's accounting: the SpanFtxPrepare
// span when the transaction is traced, and the EvFtxPrepare flight event
// when the phase exceeded the slow threshold. failed is 1 when the phase
// unwound.
func (c *Coordinator) notePrepare(start int64, shards, failed int64) {
	end := time.Now().UnixNano()
	if c.traceID != 0 {
		c.tr.Record(c.traceID, obs.SpanFtxPrepare, obs.OpAtomic, start, end, shards, failed)
	}
	if end-start >= ftxPrepareSlowNanos {
		c.fr.Load().Record(obs.EvFtxPrepare, time.Duration(end-start), shards, failed)
	}
}

// commitCross is the shard-ordered two-phase commit.
func (c *Coordinator) commitCross(parts []*participant) bool {
	traced := c.traceID != 0
	var t0 int64
	if traced {
		t0 = time.Now().UnixNano()
	}
	if !acquireIntents(c, parts) {
		c.stats.IntentConflicts++
		c.lastAbortCause = ftxAbortIntent
		if traced {
			c.tr.Record(c.traceID, obs.SpanFtxIntent, obs.OpAtomic, t0, time.Now().UnixNano(), int64(len(parts)), 1)
		}
		return false
	}
	defer releaseIntents(c, parts)
	if traced {
		c.tr.Record(c.traceID, obs.SpanFtxIntent, obs.OpAtomic, t0, time.Now().UnixNano(), int64(len(parts)), 0)
	}
	// The prepare phase is timed on every cross-shard commit — traced or
	// not — because the slow-prepare flight event needs the duration; two
	// clock reads are noise next to the per-shard sub-transactions.
	prepStart := time.Now().UnixNano()

	prepared := make([]*stm.Prepared, 0, len(parts))
	// A foreign panic out of a later shard's prepare (a bug in user code,
	// e.g. a buffered Put of a tree-reserved key) must not leave earlier
	// shards' prepared write locks behind — that would wedge every other
	// transaction touching those words forever. Prepare itself releases
	// the panicking attempt's own locks; this unwinds the rest.
	defer func() {
		if r := recover(); r != nil {
			for i := len(prepared) - 1; i >= 0; i-- {
				if prepared[i] != nil {
					prepared[i].Drop()
				}
			}
			panic(r)
		}
	}()
	for _, p := range parts {
		p := p
		pr, ok := p.sh.Thread.Prepare(func(tx *stm.Tx) {
			if !replayReads(p.sh.Map, tx, p.reads) {
				tx.Restart()
			}
			applyWrites(p.sh.Map, tx, p.writes)
		})
		if !ok {
			for i := len(prepared) - 1; i >= 0; i-- {
				prepared[i].Drop()
			}
			c.lastAbortCause = ftxAbortPrepare
			c.notePrepare(prepStart, int64(len(parts)), 1)
			return false
		}
		prepared = append(prepared, pr)
	}
	c.notePrepare(prepStart, int64(len(parts)), 0)
	var finStart int64
	if traced {
		finStart = time.Now().UnixNano()
	}
	// The durable record is assembled before finalize (write versions are
	// drawn at the lock points) and appended after every shard published:
	// one multi-shard record per cross-shard commit, so the transaction's
	// all-or-nothing property carries onto disk — a torn tail drops the
	// whole record, never half of it.
	var logged []durable.ShardOps
	if c.wal != nil {
		for i, p := range parts {
			if len(p.writes) == 0 {
				continue
			}
			logged = append(logged, durable.ShardOps{
				Shard: p.si,
				Seq:   prepared[i].WriteVersion(),
				Ops:   appendWriteOps(nil, p.writes),
			})
		}
	}
	for i, pr := range prepared {
		pr.Finalize()
		prepared[i] = nil // finalized: no longer droppable by the unwind path
	}
	if len(logged) > 0 {
		c.wal.LogAtomicT(logged, c.traceID)
	}
	if traced {
		c.tr.Record(c.traceID, obs.SpanFtxFinalize, obs.OpAtomic, finStart, time.Now().UnixNano(), int64(len(parts)), 0)
	}
	c.stats.Commits++
	return true
}

// replayReads re-performs every logged read inside tx, reporting whether
// the world still matches what fn observed. The reads join tx's read set,
// so a "still matches" answer is validated at the transaction's lock point.
func replayReads(m trees.Map, tx *stm.Tx, reads []readRec) bool {
	for i := range reads {
		r := &reads[i]
		v, present := m.GetTx(tx, r.key)
		if present != r.present || (present && v != r.val) {
			return false
		}
	}
	return true
}

// setterTx is the optional upsert entry point a tree may provide (every
// registry tree now does: sftree natively, rbtree/avltree natively, nrtree
// via embedding); without it a buffered put replays as delete+insert.
type setterTx interface {
	SetTx(tx *stm.Tx, k, v uint64)
}

// applyWrites replays the buffered writes inside tx, in ascending key
// order.
func applyWrites(m trees.Map, tx *stm.Tx, writes []writeRec) {
	st, hasSet := m.(setterTx)
	for i := range writes {
		w := &writes[i]
		if w.del {
			m.DeleteTx(tx, w.key)
			continue
		}
		if hasSet {
			st.SetTx(tx, w.key, w.val)
			continue
		}
		m.DeleteTx(tx, w.key)
		if !m.InsertTxA(tx, w.key, w.val) {
			// The key was deleted (or read absent) in this very
			// transaction: only a doomed (zombie) attempt can see it
			// occupied now. Never publish the half-applied write set —
			// retry from scratch.
			tx.Restart()
		}
	}
}

// participant is one shard's share of a transaction: its logged reads and
// buffered writes, each sorted ascending by key.
type participant struct {
	si     int
	sh     Shard
	reads  []readRec
	writes []writeRec
	// touched is the sorted union of read and written keys — the shard's
	// share of the transaction's intent footprint.
	touched []uint64
}

// participants splits the transaction's read log and write buffer by
// owning shard, sorted ascending by shard index (the deterministic prepare
// order) and by key within each shard (the deterministic intent and replay
// order).
func (t *Tx) participants() []*participant {
	byShard := make(map[int]*participant)
	get := func(si int) *participant {
		p := byShard[si]
		if p == nil {
			p = &participant{si: si, sh: t.d.Shard(si)}
			byShard[si] = p
		}
		return p
	}
	for _, r := range t.reads {
		p := get(t.d.ShardOf(r.key))
		p.reads = append(p.reads, r)
	}
	for k, w := range t.writes {
		p := get(t.d.ShardOf(k))
		p.writes = append(p.writes, writeRec{key: k, val: w.val, del: w.del})
	}
	parts := make([]*participant, 0, len(byShard))
	for _, p := range byShard {
		sort.Slice(p.reads, func(i, j int) bool { return p.reads[i].key < p.reads[j].key })
		sort.Slice(p.writes, func(i, j int) bool { return p.writes[i].key < p.writes[j].key })
		seen := make(map[uint64]struct{}, len(p.reads)+len(p.writes))
		for _, r := range p.reads {
			seen[r.key] = struct{}{}
		}
		for _, w := range p.writes {
			seen[w.key] = struct{}{}
		}
		p.touched = make([]uint64, 0, len(seen))
		for k := range seen {
			p.touched = append(p.touched, k)
		}
		sort.Slice(p.touched, func(i, j int) bool { return p.touched[i] < p.touched[j] })
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].si < parts[j].si })
	return parts
}
