package ftx

import "sync"

// IntentTable is one shard's table of in-flight cross-shard commit
// intents: an exclusive per-key claim a coordinator holds over its whole
// prepare→finalize window. One table lives on each forest shard, shared by
// every coordinator (handle) of the forest.
//
// Intents are what serializes conflicting ftx transactions against each
// other. Per-shard prepare validation catches any shard-local conflict,
// but two cross-shard transactions can form a read-write cycle no single
// shard sees (T1 reads X on shard a and writes Y on shard b while T2
// writes X and reads Y): each one's reads validate at its own lock points,
// yet the pair has no serial order. Covering *every* touched key — reads
// included — with an exclusive intent makes any such pair conflict on a
// key and keeps at least one of them out of its prepare window entirely.
//
// Plain single-shard transactions never consult the table; they are
// serialized against a prepared sub-transaction by the STM's word locks
// alone. The table is a coordination device between coordinators, not a
// lock the data path pays for.
type IntentTable struct {
	mu sync.Mutex
	m  map[uint64]*Coordinator // key → holder; lazily allocated
}

// tryAcquire claims k for owner, reporting success. A key the owner
// already holds re-acquires trivially (a key both read and written is
// touched once per role).
func (it *IntentTable) tryAcquire(k uint64, owner *Coordinator) bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	if cur, held := it.m[k]; held {
		return cur == owner
	}
	if it.m == nil {
		it.m = make(map[uint64]*Coordinator)
	}
	it.m[k] = owner
	return true
}

// release drops owner's claim on k (a no-op if owner does not hold it).
func (it *IntentTable) release(k uint64, owner *Coordinator) {
	it.mu.Lock()
	if it.m[k] == owner {
		delete(it.m, k)
	}
	it.mu.Unlock()
}

// acquireIntents claims every touched key of every participant for c, in
// the deterministic global order (ascending shard index, ascending key
// within a shard). On the first conflict it releases everything already
// acquired and reports failure — no hold-and-wait, hence no deadlock; the
// coordinator stalls through the contention manager and retries.
func acquireIntents(c *Coordinator, parts []*participant) bool {
	for pi, p := range parts {
		for ki, k := range p.touched {
			if p.sh.Intents.tryAcquire(k, c) {
				continue
			}
			for j := 0; j < ki; j++ {
				p.sh.Intents.release(p.touched[j], c)
			}
			for j := 0; j < pi; j++ {
				q := parts[j]
				for _, qk := range q.touched {
					q.sh.Intents.release(qk, c)
				}
			}
			return false
		}
	}
	return true
}

// releaseIntents drops every intent acquireIntents claimed.
func releaseIntents(c *Coordinator, parts []*participant) {
	for _, p := range parts {
		for _, k := range p.touched {
			p.sh.Intents.release(k, c)
		}
	}
}
