package trees

import (
	"testing"

	"repro/internal/stm"
)

// TestAllKindsConformance runs one oracle scenario through every registered
// tree kind via the interface, including the composable forms.
func TestAllKindsConformance(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := stm.New()
			m := New(kind, s)
			th := s.NewThread()
			stop := Start(m)
			defer stop()

			if m.Contains(th, 1) {
				t.Fatal("empty contains")
			}
			for k := uint64(0); k < 100; k++ {
				if !m.Insert(th, k, k*2) {
					t.Fatalf("insert %d failed", k)
				}
			}
			if m.Insert(th, 50, 1) {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok := m.Get(th, 50); !ok || v != 100 {
				t.Fatalf("get(50) = (%d,%v)", v, ok)
			}
			for k := uint64(0); k < 100; k += 2 {
				if !m.Delete(th, k) {
					t.Fatalf("delete %d failed", k)
				}
			}
			if got := m.Size(th); got != 50 {
				t.Fatalf("size = %d, want 50", got)
			}
			keys := m.Keys(th)
			if len(keys) != 50 {
				t.Fatalf("keys = %d entries", len(keys))
			}
			for i, k := range keys {
				if k != uint64(i*2+1) {
					t.Fatalf("keys[%d] = %d", i, k)
				}
			}

			// Composable forms inside one transaction.
			th.Atomic(func(tx *stm.Tx) {
				if !m.InsertTxA(tx, 1000, 1) {
					t.Error("InsertTxA failed")
				}
				if !m.ContainsTx(tx, 1000) {
					t.Error("own insert invisible")
				}
				if v, ok := m.GetTx(tx, 1000); !ok || v != 1 {
					t.Error("GetTx mismatch")
				}
				if !m.DeleteTx(tx, 1000) {
					t.Error("DeleteTx failed")
				}
			})
			if m.Contains(th, 1000) {
				t.Fatal("net-noop transaction left residue")
			}
			Quiesce(m, 1000)
		})
	}
}

func TestLabelsMatchPaper(t *testing.T) {
	want := map[Kind]string{
		SF: "SFtree", SFOpt: "Opt SFtree", RB: "RBtree", AVL: "AVLtree", NR: "NRtree",
	}
	for k, w := range want {
		if k.Label() != w {
			t.Errorf("%s label = %s, want %s", k, k.Label(), w)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic")
		}
	}()
	New(Kind("bogus"), stm.New())
}

func TestRotationsExposure(t *testing.T) {
	s := stm.New()
	for _, kind := range []Kind{SF, SFOpt, RB, NR} {
		m := New(kind, s)
		if _, ok := Rotations(m); !ok {
			t.Errorf("%s should expose rotations", kind)
		}
	}
	if _, ok := Rotations(New(AVL, s)); ok {
		t.Error("AVL unexpectedly exposes rotations")
	}
}

func TestAtomicDemotesElasticForUnsafeTrees(t *testing.T) {
	s := stm.New(stm.WithMode(stm.Elastic))
	// RB/AVL mutate keys in place; SFOpt pins three candidate reads (one
	// more than the elastic window) — all three must demote.
	for _, kind := range []Kind{RB, AVL, SFOpt} {
		m := New(kind, s)
		if ElasticSafe(m) {
			t.Fatalf("%s must not be elastic-safe", kind)
		}
		th := s.NewThread()
		var mode stm.Mode
		Atomic(m, th, func(tx *stm.Tx) { mode = tx.Mode() })
		if mode != stm.CTL {
			t.Fatalf("%s composed tx ran in %v, want CTL", kind, mode)
		}
	}
	for _, kind := range []Kind{SF, NR} {
		m := New(kind, s)
		if !ElasticSafe(m) {
			t.Fatalf("%s should be elastic-safe", kind)
		}
		th := s.NewThread()
		var mode stm.Mode
		Atomic(m, th, func(tx *stm.Tx) { mode = tx.Mode() })
		if mode != stm.Elastic {
			t.Fatalf("%s composed tx ran in %v, want Elastic", kind, mode)
		}
	}
}

func TestMoveOnAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		s := stm.New()
		m := New(kind, s)
		th := s.NewThread()
		m.Insert(th, 1, 11)
		m.Insert(th, 2, 22)
		if Move(m, th, 9, 3) {
			t.Fatalf("%s: move of absent key succeeded", kind)
		}
		if Move(m, th, 1, 2) {
			t.Fatalf("%s: move onto occupied key succeeded", kind)
		}
		if !Move(m, th, 1, 3) {
			t.Fatalf("%s: legitimate move failed", kind)
		}
		if v, ok := m.Get(th, 3); !ok || v != 11 {
			t.Fatalf("%s: moved value (%d,%v)", kind, v, ok)
		}
		if !Move(m, th, 2, 2) {
			t.Fatalf("%s: self-move of present key failed", kind)
		}
		if m.Size(th) != 2 {
			t.Fatalf("%s: size %d after moves", kind, m.Size(th))
		}
	}
}
