package trees

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stm"
)

// TestAllKindsConformance runs one oracle scenario through every registered
// tree kind via the interface, including the composable forms.
func TestAllKindsConformance(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := stm.New()
			m := New(kind, s)
			th := s.NewThread()
			stop := Start(m)
			defer stop()

			if m.Contains(th, 1) {
				t.Fatal("empty contains")
			}
			for k := uint64(0); k < 100; k++ {
				if !m.Insert(th, k, k*2) {
					t.Fatalf("insert %d failed", k)
				}
			}
			if m.Insert(th, 50, 1) {
				t.Fatal("duplicate insert succeeded")
			}
			if v, ok := m.Get(th, 50); !ok || v != 100 {
				t.Fatalf("get(50) = (%d,%v)", v, ok)
			}
			for k := uint64(0); k < 100; k += 2 {
				if !m.Delete(th, k) {
					t.Fatalf("delete %d failed", k)
				}
			}
			if got := m.Size(th); got != 50 {
				t.Fatalf("size = %d, want 50", got)
			}
			keys := m.Keys(th)
			if len(keys) != 50 {
				t.Fatalf("keys = %d entries", len(keys))
			}
			for i, k := range keys {
				if k != uint64(i*2+1) {
					t.Fatalf("keys[%d] = %d", i, k)
				}
			}

			// Composable forms inside one transaction.
			th.Atomic(func(tx *stm.Tx) {
				if !m.InsertTxA(tx, 1000, 1) {
					t.Error("InsertTxA failed")
				}
				if !m.ContainsTx(tx, 1000) {
					t.Error("own insert invisible")
				}
				if v, ok := m.GetTx(tx, 1000); !ok || v != 1 {
					t.Error("GetTx mismatch")
				}
				if !m.DeleteTx(tx, 1000) {
					t.Error("DeleteTx failed")
				}
			})
			if m.Contains(th, 1000) {
				t.Fatal("net-noop transaction left residue")
			}
			Quiesce(m, 1000)
		})
	}
}

// TestRangeConformance checks the Range/RangeTx contract on every kind:
// inclusive bounds, ascending order, deleted keys skipped, early stop, and
// composability inside an enclosing transaction.
func TestRangeConformance(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := stm.New()
			m := New(kind, s)
			th := s.NewThread()
			for k := uint64(0); k < 200; k++ {
				m.Insert(th, k, k+1000)
			}
			for k := uint64(0); k < 200; k += 3 {
				m.Delete(th, k)
			}
			want := func(lo, hi uint64) []uint64 {
				var out []uint64
				for k := lo; k <= hi && k < 200; k++ {
					if k%3 != 0 {
						out = append(out, k)
					}
				}
				return out
			}
			check := func(label string, got, want []uint64) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s: got %v, want %v", label, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: got %v, want %v", label, got, want)
					}
				}
			}
			for _, iv := range [][2]uint64{{0, 199}, {50, 99}, {7, 7}, {198, 5000}, {3, 3}} {
				var got []uint64
				done := m.Range(th, iv[0], iv[1], func(k, v uint64) bool {
					if v != k+1000 {
						t.Fatalf("value %d at key %d", v, k)
					}
					got = append(got, k)
					return true
				})
				if !done {
					t.Fatalf("Range(%d,%d) reported early stop", iv[0], iv[1])
				}
				check("Range", got, want(iv[0], iv[1]))
			}
			// Inverted interval: no visits, completion reported.
			if !m.Range(th, 9, 4, func(_, _ uint64) bool { t.Error("visited"); return true }) {
				t.Fatal("inverted interval reported stop")
			}
			// Early stop.
			n := 0
			if m.Range(th, 0, 199, func(_, _ uint64) bool { n++; return n < 4 }) {
				t.Fatal("stopped Range reported completion")
			}
			if n != 4 {
				t.Fatalf("stopped Range visited %d", n)
			}
			// RangeTx composes: read a window and update inside one
			// transaction; the scan must see the transaction's own writes.
			Atomic(m, th, func(tx *stm.Tx) {
				m.InsertTxA(tx, 500, 1)
				var got []uint64
				m.RangeTx(tx, 490, 510, func(k, _ uint64) bool {
					got = append(got, k)
					return true
				})
				if len(got) != 1 || got[0] != 500 {
					t.Errorf("RangeTx missed own insert: %v", got)
				}
				m.DeleteTx(tx, 500)
			})
			if m.Contains(th, 500) {
				t.Fatal("net-noop transaction left residue")
			}
		})
	}
}

func TestLabelsMatchPaper(t *testing.T) {
	want := map[Kind]string{
		SF: "SFtree", SFOpt: "Opt SFtree", RB: "RBtree", AVL: "AVLtree", NR: "NRtree",
	}
	for k, w := range want {
		if k.Label() != w {
			t.Errorf("%s label = %s, want %s", k, k.Label(), w)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic")
		}
	}()
	New(Kind("bogus"), stm.New())
}

func TestRotationsExposure(t *testing.T) {
	s := stm.New()
	for _, kind := range []Kind{SF, SFOpt, RB, NR} {
		m := New(kind, s)
		if _, ok := Rotations(m); !ok {
			t.Errorf("%s should expose rotations", kind)
		}
	}
	if _, ok := Rotations(New(AVL, s)); ok {
		t.Error("AVL unexpectedly exposes rotations")
	}
}

func TestAtomicDemotesElasticForUnsafeTrees(t *testing.T) {
	s := stm.New(stm.WithMode(stm.Elastic))
	// RB/AVL mutate keys in place; SFOpt pins three candidate reads (one
	// more than the elastic window) — all three must demote.
	for _, kind := range []Kind{RB, AVL, SFOpt} {
		m := New(kind, s)
		if ElasticSafe(m) {
			t.Fatalf("%s must not be elastic-safe", kind)
		}
		th := s.NewThread()
		var mode stm.Mode
		Atomic(m, th, func(tx *stm.Tx) { mode = tx.Mode() })
		if mode != stm.CTL {
			t.Fatalf("%s composed tx ran in %v, want CTL", kind, mode)
		}
	}
	for _, kind := range []Kind{SF, NR} {
		m := New(kind, s)
		if !ElasticSafe(m) {
			t.Fatalf("%s should be elastic-safe", kind)
		}
		th := s.NewThread()
		var mode stm.Mode
		Atomic(m, th, func(tx *stm.Tx) { mode = tx.Mode() })
		if mode != stm.Elastic {
			t.Fatalf("%s composed tx ran in %v, want Elastic", kind, mode)
		}
	}
}

// TestMoveElasticNoHalfCommit is the regression test for a value-loss bug
// in the composed Move under elastic transactions: the ContainsTx(dst)
// absence check is a cut read (exempt from commit validation), so when a
// concurrent insert occupied dst between the check and the insert, Move
// used to commit the buffered src delete while the dst insert had failed —
// silently dropping the moved value. Move now restarts the transaction in
// that state. A token bounces between two keys while an interferer makes
// dst transiently occupied; the token must never be lost.
func TestMoveElasticNoHalfCommit(t *testing.T) {
	s := stm.New(stm.WithMode(stm.Elastic), stm.WithYield(2))
	m := New(SF, s) // portable SF is elastic-safe, so Move runs elastic
	const a, b = uint64(10), uint64(20)
	const V, W = uint64(1), uint64(2)

	seed := s.NewThread()
	m.Insert(seed, a, V)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // interferer: makes b transiently occupied by its own W
		defer wg.Done()
		th := s.NewThread()
		for !stop.Load() {
			if m.Insert(th, b, W) {
				m.Delete(th, b)
			}
		}
	}()
	wg.Add(1)
	go func() { // mover: bounces the V token between a and b
		defer wg.Done()
		th := s.NewThread()
		for !stop.Load() {
			if !Move(m, th, a, b) {
				Move(m, th, b, a)
			}
		}
	}()
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	th := s.NewThread()
	va, oka := m.Get(th, a)
	vb, okb := m.Get(th, b)
	hasV := (oka && va == V) || (okb && vb == V)
	if !hasV {
		t.Fatalf("token lost: a=(%d,%v) b=(%d,%v)", va, oka, vb, okb)
	}
}

func TestMoveOnAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		s := stm.New()
		m := New(kind, s)
		th := s.NewThread()
		m.Insert(th, 1, 11)
		m.Insert(th, 2, 22)
		if Move(m, th, 9, 3) {
			t.Fatalf("%s: move of absent key succeeded", kind)
		}
		if Move(m, th, 1, 2) {
			t.Fatalf("%s: move onto occupied key succeeded", kind)
		}
		if !Move(m, th, 1, 3) {
			t.Fatalf("%s: legitimate move failed", kind)
		}
		if v, ok := m.Get(th, 3); !ok || v != 11 {
			t.Fatalf("%s: moved value (%d,%v)", kind, v, ok)
		}
		if !Move(m, th, 2, 2) {
			t.Fatalf("%s: self-move of present key failed", kind)
		}
		if m.Size(th) != 2 {
			t.Fatalf("%s: size %d after moves", kind, m.Size(th))
		}
	}
}

// TestSetTxOnAllKinds: every registry tree provides a native SetTx upsert
// (sftree directly, rb/avl natively, nr via embedding) — the write-replay
// entry point of the cross-shard coordinator. Upserting must overwrite a
// present key in place, insert an absent one, and resurrect a logically
// deleted one, all composably inside an enclosing transaction.
func TestSetTxOnAllKinds(t *testing.T) {
	type setter interface {
		SetTx(tx *stm.Tx, k, v uint64)
	}
	for _, kind := range Kinds() {
		s := stm.New()
		m := New(kind, s)
		th := s.NewThread()
		st, ok := m.(setter)
		if !ok {
			t.Fatalf("%s: no native SetTx", kind)
		}
		m.Insert(th, 1, 11)
		m.Insert(th, 2, 22)
		m.Delete(th, 2) // logical on the sf family, physical on rb/avl
		Atomic(m, th, func(tx *stm.Tx) {
			st.SetTx(tx, 1, 100) // overwrite in place
			st.SetTx(tx, 2, 200) // resurrect / reinsert
			st.SetTx(tx, 3, 300) // fresh insert
		})
		for k, want := range map[uint64]uint64{1: 100, 2: 200, 3: 300} {
			if v, ok := m.Get(th, k); !ok || v != want {
				t.Fatalf("%s: key %d = (%d,%v), want %d", kind, k, v, ok, want)
			}
		}
		if n := m.Size(th); n != 3 {
			t.Fatalf("%s: size %d after upserts, want 3", kind, n)
		}
	}
}
