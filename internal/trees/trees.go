// Package trees defines the common transactional-map interface the four
// benchmarked tree libraries implement, and a registry to construct them by
// the names used in the paper's figures. The benchmark harness, the
// vacation application and the public facade all program against this
// interface, so every experiment can swap tree libraries with a flag.
package trees

import (
	"fmt"

	"repro/internal/avltree"
	"repro/internal/nrtree"
	"repro/internal/rbtree"
	"repro/internal/sftree"
	"repro/internal/stm"
)

// Map is the transactional associative-array abstraction all trees
// implement: whole-operation forms taking a *stm.Thread, and composable
// forms taking the enclosing *stm.Tx (the reusability surface of §5.4).
type Map interface {
	// Whole-operation forms (each runs its own transaction).
	Insert(th *stm.Thread, k, v uint64) bool
	Delete(th *stm.Thread, k uint64) bool
	Get(th *stm.Thread, k uint64) (uint64, bool)
	Contains(th *stm.Thread, k uint64) bool
	Size(th *stm.Thread) int
	Keys(th *stm.Thread) []uint64
	// Range visits, in ascending key order, every element whose key lies
	// in [lo, hi] (both inclusive), calling fn(k, v) for each; fn returning
	// false stops the scan early. Range reports whether the scan ran to the
	// end of the interval (true) or was stopped by fn (false). The visited
	// elements form one consistent snapshot of the interval (the same
	// snapshot discipline as Size and Keys), and fn is invoked only after
	// the snapshot transaction commits — exactly once per element, never
	// from an aborted attempt — so it may accumulate state freely.
	Range(th *stm.Thread, lo, hi uint64, fn func(k, v uint64) bool) bool

	// Composable forms.
	GetTx(tx *stm.Tx, k uint64) (uint64, bool)
	ContainsTx(tx *stm.Tx, k uint64) bool
	InsertTxA(tx *stm.Tx, k, v uint64) bool
	DeleteTx(tx *stm.Tx, k uint64) bool
	// RangeTx is the composable form of Range, for use inside an enclosing
	// transaction (paper §5.4's reusability). Unlike Range's callback, fn
	// here runs inside the transaction: it is re-executed when the
	// enclosing transaction retries, so it must reset any accumulator at
	// the point the transaction function restarts.
	RangeTx(tx *stm.Tx, lo, hi uint64, fn func(k, v uint64) bool) bool
}

// Maintained is implemented by trees with a background maintenance thread
// (the speculation-friendly variants). Start/Stop control the rotator
// goroutine; Quiesce drains pending structural work synchronously.
type Maintained interface {
	Start()
	Stop()
	Quiesce(maxPasses int) bool
}

// HintMaintained is implemented by trees whose maintenance can be driven by
// an external scheduler (the forest's shared worker pool) instead of their
// own goroutine: bounded targeted hint repairs, full fallback sweeps, a
// backlog probe for scheduling, and a wake callback fired when hints
// arrive. All four driver methods (DrainHints, RunMaintenancePass, and
// Maintained's Quiesce) are single-driver: the scheduler must guarantee at
// most one goroutine drives a given tree at any instant.
type HintMaintained interface {
	Maintained
	// DrainHints consumes up to max queued hints with targeted repairs,
	// returning the hints consumed and the structural work done.
	DrainHints(max int) (hints, work int)
	// RunMaintenancePass executes one full fallback sweep, returning the
	// structural work done.
	RunMaintenancePass() int
	// HintBacklog reports the number of queued, unconsumed hints.
	HintBacklog() int
	// SetMaintNotify registers a non-blocking callback invoked whenever a
	// hint is enqueued (nil disables).
	SetMaintNotify(fn func())
}

// HintMaintainedOf returns m's hint-maintenance surface when the tree
// actually performs maintenance. The no-restructuring ablation satisfies
// HintMaintained with no-ops (it must remain registry-compatible) and is
// excluded here, so schedulers and statistics never report workers for a
// tree that by definition does no structural work.
func HintMaintainedOf(m Map) (HintMaintained, bool) {
	if _, ok := m.(*nrtree.Tree); ok {
		return nil, false
	}
	mt, ok := m.(HintMaintained)
	return mt, ok
}

// Kind names a tree library with the labels of the paper's figures.
type Kind string

const (
	// SF is the portable speculation-friendly tree (Algorithm 1).
	SF Kind = "sf"
	// SFOpt is the optimized speculation-friendly tree (Algorithm 2).
	SFOpt Kind = "sf-opt"
	// RB is the Oracle-style transactional red-black tree.
	RB Kind = "rb"
	// AVL is the STAMP-style transactional AVL tree.
	AVL Kind = "avl"
	// NR is the no-restructuring tree.
	NR Kind = "nr"
)

// Kinds lists every registered tree kind in figure order.
func Kinds() []Kind { return []Kind{RB, SF, SFOpt, NR, AVL} }

// Label returns the display name used in the paper's plots.
func (k Kind) Label() string {
	switch k {
	case SF:
		return "SFtree"
	case SFOpt:
		return "Opt SFtree"
	case RB:
		return "RBtree"
	case AVL:
		return "AVLtree"
	case NR:
		return "NRtree"
	default:
		return string(k)
	}
}

// New constructs an empty tree of the given kind on the STM domain.
// It panics on unknown kinds (a configuration error, never data-dependent).
func New(kind Kind, s *stm.STM) Map {
	switch kind {
	case SF:
		return sftree.New(s, sftree.WithVariant(sftree.Portable))
	case SFOpt:
		return sftree.New(s, sftree.WithVariant(sftree.Optimized))
	case RB:
		return rbtree.New(s)
	case AVL:
		return avltree.New(s)
	case NR:
		return nrtree.New(s)
	default:
		panic(fmt.Sprintf("trees: unknown kind %q", kind))
	}
}

// Start begins background maintenance when the tree has any (no-op
// otherwise), returning a stop function.
func Start(m Map) (stop func()) {
	if mt, ok := m.(Maintained); ok {
		mt.Start()
		return mt.Stop
	}
	return func() {}
}

// Quiesce drains maintenance work when the tree has any.
func Quiesce(m Map, maxPasses int) {
	if mt, ok := m.(Maintained); ok {
		mt.Quiesce(maxPasses)
	}
}

// EmptyHinter is implemented by trees that can report, from one plain read,
// that they were just observed to hold no elements. The hint is
// instantaneous — an "empty at the moment of the load" snapshot — so
// read-only scans may use it to skip a tree entirely without opening a
// transaction (or registering an STM thread with its domain). A false
// result carries no information.
type EmptyHinter interface {
	EmptyHint() bool
}

// EmptyHint reports whether m was just observed empty; false when m cannot
// tell cheaply.
func EmptyHint(m Map) bool {
	if eh, ok := m.(EmptyHinter); ok {
		return eh.EmptyHint()
	}
	return false
}

// ElasticAware is implemented by trees that declare whether they tolerate
// elastic (cut) read tracking. Trees without the method are treated as
// elastic-safe (the speculation-friendly trees are, by design: immutable
// keys, signposted removals, candidate reads pinned transactionally).
type ElasticAware interface {
	ElasticSafe() bool
}

// ElasticSafe reports whether m tolerates elastic transactions.
func ElasticSafe(m Map) bool {
	if ea, ok := m.(ElasticAware); ok {
		return ea.ElasticSafe()
	}
	return true
}

// Atomic runs fn as one transaction in the thread's default mode, demoted
// from Elastic to CTL when the map does not tolerate cut reads. All
// compositions over a Map (Move, the vacation transactions, the public
// facade's Update) must go through this helper rather than calling
// Thread.Atomic directly.
func Atomic(m Map, th *stm.Thread, fn func(*stm.Tx)) {
	mode := th.STM().DefaultMode()
	if mode == stm.Elastic && !ElasticSafe(m) {
		mode = stm.CTL
	}
	th.AtomicMode(mode, fn)
}

// Move atomically relocates the value at src to dst on any Map, composed
// from the interface's *Tx forms exactly as paper §5.4 prescribes: it
// succeeds — deleting src and inserting dst — only when src is present and
// dst absent. (sftree.Tree also offers a scratch-managed Move method; this
// free function is the portable composition that works for every library.)
func Move(m Map, th *stm.Thread, src, dst uint64) bool {
	if src == dst {
		return m.Contains(th, src)
	}
	var ok bool
	Atomic(m, th, func(tx *stm.Tx) {
		ok = false
		v, present := m.GetTx(tx, src)
		if !present || m.ContainsTx(tx, dst) {
			return
		}
		if !m.DeleteTx(tx, src) {
			return
		}
		if !m.InsertTxA(tx, dst, v) {
			// dst was checked absent in this very transaction: only a
			// doomed (zombie) attempt or an elastic cut of that check can
			// see it occupied now. Committing would make the half-move
			// (the buffered src delete) durable and lose the value under
			// elastic transactions, whose cut reads are exempt from commit
			// validation — retry from scratch instead.
			tx.Restart()
		}
		ok = true
	})
	return ok
}

// Rotations reports structural rotations for kinds that expose them:
// committed rotations for the speculation-friendly trees, attempted
// rotations for the red-black tree (§5.5's comparison).
func Rotations(m Map) (uint64, bool) {
	switch t := m.(type) {
	case *sftree.Tree:
		return t.Stats().Rotations, true
	case *nrtree.Tree:
		return t.Tree.Stats().Rotations, true
	case *rbtree.Tree:
		return t.Rotations(), true
	default:
		return 0, false
	}
}
