package repro

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/trees"
)

// traceDoc mirrors the /trace JSON shape.
type traceDoc struct {
	SampleEvery int    `json:"sample_every"`
	Sampled     uint64 `json:"sampled_ops"`
	Spans       []struct {
		TraceID uint64 `json:"trace_id"`
		Kind    string `json:"kind"`
		Op      string `json:"op"`
		DurNs   int64  `json:"dur_ns"`
		A       int64  `json:"a"`
		B       int64  `json:"b"`
	} `json:"spans"`
	SlowOps []struct {
		TraceID uint64 `json:"trace_id"`
		Op      string `json:"op"`
		DurNs   int64  `json:"dur_ns"`
	} `json:"slow_ops"`
}

// TestTraceEndpointSmoke is the `make trace-smoke` CI gate: a short durable
// batched cross-shard benchmark with full sampling, /trace scraped in the
// middle of the hammer phase. The scrape must prove spans from every
// instrumented layer stitched together: an STM retry (an attempt span that
// aborted or a follow-up attempt), a combiner batch wait, an ftx prepare
// phase, and a WAL append that stretched to its group-commit fsync.
func TestTraceEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live endpoint scrape; skipped in -short")
	}
	addrCh := make(chan string, 1)
	docCh := make(chan traceDoc, 1)
	errCh := make(chan string, 1)
	go func() {
		addr := <-addrCh
		// Poll /trace while the hammer runs, accumulating span kinds until
		// every layer has shown up or the run ends. Each poll sees the
		// current ring window; the union over polls is what we assert on.
		var acc traceDoc
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/trace")
			if err != nil {
				break // endpoint shut down: the run is over
			}
			var doc traceDoc
			derr := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if derr != nil {
				errCh <- "bad /trace JSON: " + derr.Error()
				return
			}
			acc.SampleEvery = doc.SampleEvery
			acc.Sampled = doc.Sampled
			acc.Spans = append(acc.Spans, doc.Spans...)
			acc.SlowOps = append(acc.SlowOps, doc.SlowOps...)
			if hasAllTraceLayers(acc) {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		docCh <- acc
	}()

	res := bench.Run(bench.Options{
		Kind:     trees.SFOpt,
		Threads:  4,
		Duration: 800 * time.Millisecond,
		Workload: bench.Workload{
			KeyRange:      1 << 6, // tiny range: real conflicts for the retry spans
			UpdatePercent: 50,
			MovePercent:   60,   // moves run direct transactions that conflict with batches
			RangeFrac:     0.05, // so do range-scan snapshots
			RangeLen:      64,
			XactFrac:      0.10,
			XactKeys:      2,
			XactCrossFrac: 1, // cross-shard transfers: 2PC prepare + intent conflicts
		},
		Seed:       11,
		Shards:     2,
		CM:         "suicide", // no backoff: aborts stay frequent
		Batch:      16,
		BatchWait:  20 * time.Microsecond, // linger: every op rides the combiner
		Durable:    true,
		TraceEvery: 1,
		YieldEvery: 4, // force interleavings so retries reliably appear in the ring
		ObsAddr:    "127.0.0.1:0",
		ObsReady:   func(addr string) { addrCh <- addr },
	})
	if res.Ops == 0 {
		t.Fatal("benchmark did no operations")
	}

	select {
	case msg := <-errCh:
		t.Fatal(msg)
	case doc := <-docCh:
		if doc.SampleEvery != 1 {
			t.Errorf("sample_every = %d, want 1", doc.SampleEvery)
		}
		if doc.Sampled == 0 {
			t.Error("no sampled ops reported")
		}
		kinds := map[string]int{}
		retries, walFsync := 0, 0
		for _, sp := range doc.Spans {
			kinds[sp.Kind]++
			if sp.Kind == "stm.attempt" && (sp.A >= 0 || sp.B > 0) {
				retries++ // an aborted attempt, or any attempt after the first
			}
			if sp.Kind == "wal.append" && sp.DurNs > 0 {
				walFsync++
			}
		}
		for _, k := range []string{"op", "stm.attempt", "combiner.wait", "ftx.prepare", "wal.append"} {
			if kinds[k] == 0 {
				t.Errorf("mid-run /trace missing %q spans (have %v)", k, kinds)
			}
		}
		if retries == 0 {
			t.Error("no STM retry visible in attempt spans despite a contended workload")
		}
		if walFsync == 0 {
			t.Error("no WAL append span stretching to a group-commit fsync")
		}
		if len(doc.SlowOps) == 0 {
			t.Error("slow-op table empty despite full sampling")
		}
	}
}

func hasAllTraceLayers(doc traceDoc) bool {
	var op, attempt, retry, wait, prepare, wal bool
	for _, sp := range doc.Spans {
		switch sp.Kind {
		case "op":
			op = true
		case "stm.attempt":
			attempt = true
			if sp.A >= 0 || sp.B > 0 {
				retry = true
			}
		case "combiner.wait":
			wait = true
		case "ftx.prepare":
			prepare = true
		case "wal.append":
			wal = true
		}
	}
	return op && attempt && retry && wait && prepare && wal
}

// TestTreeTracingFacade exercises repro.WithTracing end to end: the option
// forces the forest path, attaches a tracer, and serves it at /trace; every
// sampled op shows up with an op span and the per-op-kind latency
// histograms feed op_latency_nanos in the registry.
func TestTreeTracingFacade(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized,
		WithTracing(1), WithObservability("127.0.0.1:0"))
	defer tr.Close()
	if tr.Tracer() == nil {
		t.Fatal("Tracer() nil despite WithTracing")
	}
	h := tr.NewHandle()
	for i := uint64(0); i < 300; i++ {
		h.Insert(i, i)
		h.Get(i)
	}

	body := scrape(t, tr.ObsAddr(), "/trace")
	var doc traceDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad /trace JSON: %v", err)
	}
	if doc.Sampled != 600 {
		t.Errorf("sampled_ops = %d, want 600", doc.Sampled)
	}
	kinds := map[string]bool{}
	for _, sp := range doc.Spans {
		kinds[sp.Kind] = true
	}
	if !kinds["op"] || !kinds["stm.attempt"] {
		t.Errorf("facade /trace missing op or attempt spans: %s", body)
	}

	if h := tr.Tracer().OpHistogram(0 /* OpInsert */).Snapshot(); h.Count != 300 {
		t.Errorf("insert latency histogram count = %d, want 300", h.Count)
	}
	metrics := scrape(t, tr.ObsAddr(), "/metrics")
	for _, f := range []string{`op_latency_nanos_count{op="insert"} 300`, "trace_sampled_ops_total 600"} {
		if !strings.Contains(metrics, f) {
			t.Errorf("/metrics missing %q", f)
		}
	}
}

// TestSnapshotSinceWindow checks /snapshot?since=<seq> windowed diffing:
// the second scrape hands back the first's seq and must come back windowed,
// with counter samples showing only the delta between the scrapes.
func TestSnapshotSinceWindow(t *testing.T) {
	tr := NewTree(SpeculationFriendlyOptimized,
		WithShards(2), WithObservability("127.0.0.1:0"))
	defer tr.Close()
	h := tr.NewHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i)
	}

	type snapDoc struct {
		Seq      uint64 `json:"seq"`
		Since    uint64 `json:"since"`
		Windowed bool   `json:"windowed"`
		Samples  []struct {
			Name  string  `json:"name"`
			Label string  `json:"label"`
			Value float64 `json:"value"`
		} `json:"samples"`
	}
	commits := func(d snapDoc) float64 {
		var v float64
		for _, sm := range d.Samples {
			if sm.Name == "stm_commits_total" {
				v += sm.Value
			}
		}
		return v
	}

	var first snapDoc
	if err := json.Unmarshal([]byte(scrape(t, tr.ObsAddr(), "/snapshot")), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq == 0 || first.Windowed {
		t.Fatalf("full snapshot: seq=%d windowed=%t, want seq>0 and un-windowed", first.Seq, first.Windowed)
	}
	base := commits(first)
	if base < 100 {
		t.Fatalf("first snapshot shows %.0f commits, want >= 100", base)
	}

	const extra = 50
	for i := uint64(0); i < extra; i++ {
		h.Insert(1000+i, i)
	}
	var diff snapDoc
	if err := json.Unmarshal([]byte(scrape(t, tr.ObsAddr(), "/snapshot?since="+
		jsonUint(first.Seq))), &diff); err != nil {
		t.Fatal(err)
	}
	if !diff.Windowed || diff.Since != first.Seq || diff.Seq <= first.Seq {
		t.Fatalf("windowed snapshot: seq=%d since=%d windowed=%t", diff.Seq, diff.Since, diff.Windowed)
	}
	// The window holds the delta only: the commits between the scrapes, not
	// the lifetime total.
	if d := commits(diff); d < extra || d >= base+extra {
		t.Errorf("windowed commits = %.0f, want a delta in [%d, %.0f)", d, extra, base+extra)
	}

	// An aged-out or unknown seq falls back to a full snapshot.
	var fallback snapDoc
	if err := json.Unmarshal([]byte(scrape(t, tr.ObsAddr(), "/snapshot?since=999999")), &fallback); err != nil {
		t.Fatal(err)
	}
	if fallback.Windowed {
		t.Error("unknown since seq must fall back to a full, un-windowed snapshot")
	}
}

func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
