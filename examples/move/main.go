// Move: the paper's §5.4 reusability demonstration — a new atomic operation
// composed from the library's insert and delete, without touching any
// synchronization internals.
//
// Run with:
//
//	go run ./examples/move
//
// A fixed population of "jobs" migrates between three key bands (pending,
// running, done) under heavy concurrency. Because each migration is one
// atomic Move, no job can ever be duplicated or lost, which the final census
// verifies.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro"
)

const (
	bandWidth = 1 << 20
	pending   = 0 * bandWidth
	running   = 1 * bandWidth
	done      = 2 * bandWidth

	nJobs    = 400
	nWorkers = 6
	nMoves   = 3000
)

func main() {
	tree := repro.NewTree(repro.SpeculationFriendlyOptimized)
	defer tree.Close()

	setup := tree.NewHandle()
	for j := uint64(0); j < nJobs; j++ {
		setup.Insert(pending+j, j) // value = job payload
	}

	var wg sync.WaitGroup
	moved := make([]int, nWorkers)
	for w := 0; w < nWorkers; w++ {
		h := tree.NewHandle()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < nMoves; i++ {
				j := uint64(rng.Intn(nJobs))
				var src, dst uint64
				switch rng.Intn(3) {
				case 0:
					src, dst = pending+j, running+j
				case 1:
					src, dst = running+j, done+j
				default:
					src, dst = done+j, pending+j // recycle
				}
				if h.Move(src, dst) {
					moved[w]++
				}
			}
		}(w)
	}
	wg.Wait()

	// Census: every job must exist in exactly one band.
	h := tree.NewHandle()
	counts := map[string]int{}
	seen := map[uint64]int{}
	for _, k := range h.Keys() {
		job := k % bandWidth
		seen[job]++
		switch {
		case k < running:
			counts["pending"]++
		case k < done:
			counts["running"]++
		default:
			counts["done"]++
		}
	}
	total := counts["pending"] + counts["running"] + counts["done"]
	fmt.Printf("bands: pending=%d running=%d done=%d (total %d, expected %d)\n",
		counts["pending"], counts["running"], counts["done"], total, nJobs)
	for j := uint64(0); j < nJobs; j++ {
		if seen[j] != 1 {
			panic(fmt.Sprintf("job %d present %d times: Move was not atomic", j, seen[j]))
		}
	}
	var totalMoves int
	for _, m := range moved {
		totalMoves += m
	}
	fmt.Printf("successful moves: %d of %d attempts\n", totalMoves, nWorkers*nMoves)
	fmt.Println("census OK: every job in exactly one band")
}
