// Travel: a miniature reservation service in the style of STAMP's vacation
// application (paper §5.5), built entirely on the public API.
//
// Run with:
//
//	go run ./examples/travel
//
// Inventory lives in one tree (key = resource id, value = free units);
// bookings in another (key = customer<<32|resource). Booking a trip means
// atomically taking one unit from a flight AND one from a hotel — a single
// composed transaction spanning both trees is exactly what transactional
// data structures make safe to write.
package main

import (
	"fmt"
	"sync"

	"repro"
)

const (
	flightBase = 1_000 // flight resource ids: flightBase+i
	hotelBase  = 2_000 // hotel resource ids: hotelBase+i
	nResources = 50
	unitsEach  = 30
	nCustomers = 200
	tripsEach  = 20
)

func bookingKey(customer, resource uint64) uint64 { return customer<<32 | resource }

func main() {
	inventory := repro.NewTree(repro.SpeculationFriendlyOptimized)
	defer inventory.Close()
	bookings := repro.NewTree(repro.SpeculationFriendlyOptimized)
	defer bookings.Close()

	setup := inventory.NewHandle()
	for i := uint64(0); i < nResources; i++ {
		setup.Insert(flightBase+i, unitsEach)
		setup.Insert(hotelBase+i, unitsEach)
	}

	var booked, soldOut sync.Map
	var wg sync.WaitGroup
	for c := uint64(1); c <= nCustomers; c++ {
		hInv := inventory.NewHandle()
		hBook := bookings.NewHandle()
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			var ok, fail int
			for trip := 0; trip < tripsEach; trip++ {
				flight := flightBase + (c+uint64(trip))%nResources
				hotel := hotelBase + (c*7+uint64(trip))%nResources
				success := false
				// The whole trip is one transaction: either both units are
				// taken or neither is. Note how the code reads like the
				// sequential version.
				hInv.Update(func(op *repro.Op) {
					success = false
					f, _ := op.Get(flight)
					h, _ := op.Get(hotel)
					if f == 0 || h == 0 {
						return
					}
					op.Delete(flight)
					op.Insert(flight, f-1)
					op.Delete(hotel)
					op.Insert(hotel, h-1)
					success = true
				})
				if success {
					hBook.Insert(bookingKey(c, flight), hotel)
					ok++
				} else {
					fail++
				}
			}
			booked.Store(c, ok)
			soldOut.Store(c, fail)
		}(c)
	}
	wg.Wait()

	// Conservation check: units booked + units free must equal the stock.
	check := inventory.NewHandle()
	var free uint64
	for _, k := range check.Keys() {
		v, _ := check.Get(k)
		free += v
	}
	var totalBooked int
	booked.Range(func(_, v any) bool { totalBooked += v.(int); return true })
	var totalFailed int
	soldOut.Range(func(_, v any) bool { totalFailed += v.(int); return true })

	stock := uint64(2 * nResources * unitsEach)
	fmt.Printf("trips booked: %d, sold out: %d\n", totalBooked, totalFailed)
	fmt.Printf("units: booked %d + free %d = %d (stock %d)\n",
		2*totalBooked, free, uint64(2*totalBooked)+free, stock)
	if uint64(2*totalBooked)+free != stock {
		panic("conservation violated: a booking transaction was not atomic")
	}
	bh := bookings.NewHandle()
	fmt.Printf("booking records: %d\n", bh.Len())
	st := inventory.Stats()
	fmt.Printf("inventory stm: %d commits, %d aborts (%.2f%% abort rate)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
}
