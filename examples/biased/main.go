// Biased: why background restructuring matters (paper Fig. 3, right side).
//
// Run with:
//
//	go run ./examples/biased
//
// Two trees receive the same biased workload: the key population drifts
// upward over time (inserts ahead of an advancing front, deletes behind
// it), the long-run effect of the paper's insert-high/delete-low skew. The
// speculation-friendly tree's maintenance thread rebalances in the
// background and physically removes the deleted trail; the
// no-restructuring tree keeps every dead node and appends ever-increasing
// keys to its right spine, degenerating towards a list. The final shapes
// and a timed lookup phase make the difference tangible.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

const (
	steps     = 6000
	windowLen = 512 // live keys trail the front by about this much
	lookups   = 4000
)

func drive(kind repro.Kind, label string) {
	tree := repro.NewTree(kind)
	defer tree.Close()
	h := tree.NewHandle()

	rng := rand.New(rand.NewSource(1))
	front := uint64(windowLen)
	for i := 0; i < steps; i++ {
		// Insert just ahead of the front, delete behind it: the population
		// is a sliding window of ~windowLen keys drifting upward.
		h.Insert(front+uint64(rng.Intn(10)), front)
		h.Delete(front - windowLen + uint64(rng.Intn(10)))
		front++
	}
	tree.Maintain(1 << 20)

	start := time.Now()
	hits := 0
	for i := 0; i < lookups; i++ {
		k := front - windowLen + uint64(rng.Intn(windowLen))
		if h.Contains(k) {
			hits++
		}
	}
	lookupDur := time.Since(start)

	ms := tree.MaintenanceStats()
	fmt.Printf("%-24s size=%-4d lookups=%-8v hits=%-4d rotations=%-5d removals=%d\n",
		label, h.Len(), lookupDur.Round(time.Millisecond), hits, ms.Rotations, ms.Removals)
}

func main() {
	fmt.Printf("drifting workload: %d insert-ahead/delete-behind steps, window ≈ %d keys\n\n",
		steps, windowLen)
	drive(repro.SpeculationFriendlyOptimized, "Opt SFtree (rebalanced)")
	drive(repro.NoRestructuring, "NRtree (degenerate)")
	fmt.Println("\nboth trees hold the same ~window of live keys, but the NRtree still carries")
	fmt.Println("every logically deleted node and hangs all new keys off its right spine, so")
	fmt.Println("its lookups walk a structure thousands of nodes deep — the cost the")
	fmt.Println("speculation-friendly tree's background rotations and removals avoid while")
	fmt.Println("keeping each update transaction a couple of words big.")
}
