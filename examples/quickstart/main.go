// Quickstart: the speculation-friendly tree as a concurrent ordered map.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It walks through the public API: creating a tree, per-goroutine handles,
// the basic map operations, composed atomic transactions (the paper §5.4
// reusability), and the maintenance statistics that expose the decoupled
// restructuring at work.
package main

import (
	"fmt"
	"sync"

	"repro"
)

func main() {
	// A speculation-friendly tree with its maintenance goroutine running.
	tree := repro.NewTree(repro.SpeculationFriendlyOptimized)
	defer tree.Close()

	// Handles are per-goroutine accessors.
	h := tree.NewHandle()
	for k := uint64(1); k <= 10; k++ {
		h.Insert(k, k*100)
	}
	if v, ok := h.Get(7); ok {
		fmt.Printf("key 7 -> %d\n", v)
	}
	h.Delete(3)
	fmt.Printf("after delete(3): len=%d keys=%v\n", h.Len(), h.Keys())

	// Operations compose into one atomic transaction: a conditional
	// "move" exactly like the paper's composed operation.
	h.Update(func(op *repro.Op) {
		if v, ok := op.Get(5); ok && !op.Contains(50) {
			op.Delete(5)
			op.Insert(50, v)
		}
	})
	fmt.Printf("after move 5->50: keys=%v\n", h.Keys())

	// Or simply use the built-in Move.
	h.Move(50, 5)
	fmt.Printf("after move 50->5: keys=%v\n", h.Keys())

	// Concurrency: one handle per goroutine, no locks anywhere in sight.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		hg := tree.NewHandle()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(1000 * (g + 1))
			for i := uint64(0); i < 500; i++ {
				hg.Insert(base+i, i)
			}
			for i := uint64(0); i < 500; i += 2 {
				hg.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("after concurrent phase: len=%d\n", h.Len())

	// The decoupling at work: deletions above were logical; the background
	// maintenance thread unlinks, rebalances and garbage-collects.
	tree.Maintain(1 << 20)
	ms := tree.MaintenanceStats()
	fmt.Printf("maintenance: %d rotations, %d removals, %d nodes reclaimed over %d passes\n",
		ms.Rotations, ms.Removals, ms.Freed, ms.Passes)
	st := tree.Stats()
	fmt.Printf("stm: %d commits, %d aborts (%.2f%% abort rate)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
}
